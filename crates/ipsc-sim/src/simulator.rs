//! The discrete-event iPSC/860 simulator — this reproduction's stand-in for
//! the real machine (the paper's "measured" times, §5.1: averages of 1000
//! runs whose variance comes from timing-routine tolerance and system-load
//! fluctuations).
//!
//! Where the *predictor* uses static heuristics, the simulator uses the
//! functional interpreter's execution profile (actual loop trips, actual
//! mask densities) and a finer cost model (compiled-code distortion factors,
//! conflict misses, network contention, per-phase load jitter). The gap
//! between the two is therefore an honest prediction error, not a tuned
//! constant.

use crate::network::{
    patterns, simulate_phase, simulate_phase_faulty, simulate_phase_topo, FaultStats, Message,
};
use hpf_compiler::{CommPhase, CompPhase, OpCounts, SeqBlock, SpmdNode, SpmdProgram};
use hpf_eval::ExecutionProfile;
use hpf_machines::{Topology, TopologyError};
use machine::{CollectiveOp, CommComponent, FaultPlan, Hypercube, MachineModel, OpClass};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;

/// Simulation configuration.
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// Number of runs to average (the paper uses 1000).
    pub runs: usize,
    /// RNG seed (runs are reproducible).
    pub seed: u64,
    /// System-load fluctuation: multiplicative noise stdev per phase.
    pub load_jitter: f64,
    /// Timing-routine tolerance: absolute noise on each run's total, secs.
    pub timer_tolerance: f64,
    /// Injected faults. `FaultPlan::none()` (the default) keeps every walk
    /// on the original healthy code path, bit-identical to a fault-free
    /// build; fault draws use their own RNG stream derived from
    /// `faults.seed`, so the jitter/timer streams are never perturbed.
    pub faults: FaultPlan,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            runs: 1000,
            seed: 0x5C94,
            load_jitter: 0.015,
            timer_tolerance: 20e-6,
            faults: FaultPlan::none(),
        }
    }
}

/// Result of a simulation: statistics over runs plus the mean breakdown.
#[derive(Debug, Clone)]
pub struct SimResult {
    pub mean: f64,
    pub std: f64,
    pub min: f64,
    pub max: f64,
    pub runs: usize,
    /// Mean decomposition (jitter-free base).
    pub comp: f64,
    pub comm: f64,
    pub overhead: f64,
    /// Parallel-I/O phase time (striped server transfers; zero for
    /// programs without I/O statements).
    pub io: f64,
    /// Fault events accumulated over every run (all zero when the config's
    /// fault plan is empty).
    pub fault_stats: FaultStats,
}

impl SimResult {
    /// Mean execution time in seconds (the "measured time").
    pub fn measured(&self) -> f64 {
        self.mean
    }
}

/// The machine simulator.
#[derive(Debug, Clone)]
pub struct Simulator<'m> {
    pub machine: &'m MachineModel,
    pub config: SimConfig,
}

/// Distortion of the real compiled code relative to the static
/// characterization: the compiler's actual instruction selection, pipeline
/// stalls, and library code paths deviate from counted costs by a few
/// percent in op-class-dependent directions.
#[derive(Debug, Clone, Copy)]
struct Distortion {
    fp: f64,
    int: f64,
    mem: f64,
    loop_ovh: f64,
    comm_sw: f64,
    mask_branch: f64,
}

const DISTORTION: Distortion = Distortion {
    fp: 1.06,
    int: 1.10,
    mem: 1.12,
    loop_ovh: 1.18,
    comm_sw: 1.08,
    mask_branch: 1.35,
};

impl<'m> Simulator<'m> {
    pub fn new(machine: &'m MachineModel) -> Self {
        Simulator {
            machine,
            config: SimConfig::default(),
        }
    }

    pub fn with_config(machine: &'m MachineModel, config: SimConfig) -> Self {
        Simulator { machine, config }
    }

    /// Simulate the SPMD program. `profile` supplies actual dynamic behaviour
    /// (from the functional interpreter); without it the simulator falls
    /// back to the same static hints the predictor uses.
    pub fn simulate(&self, spmd: &SpmdProgram, profile: Option<&ExecutionProfile>) -> SimResult {
        let _span = hpf_trace::span("simulate");
        let plan = &self.config.faults;
        let faults_active = !plan.is_zero();

        // A slow node gates every synchronized SPMD phase, so walks compute
        // against a clock-degraded copy of the machine (communication
        // faults are injected at the network level instead).
        let machine_slow;
        let machine: &MachineModel = {
            let slow = plan.max_slowdown();
            if slow > 1.0 {
                let mut m = self.machine.clone();
                m.node_processing.clock_mhz /= slow;
                m.node_memory.clock_mhz /= slow;
                machine_slow = m;
                &machine_slow
            } else {
                self.machine
            }
        };

        // Base comm-phase durations are deterministic for a fixed machine,
        // so the memo table persists across every walk of this simulation
        // (each run re-draws only the jitter applied on top). Unused while
        // faults are active — each walk then re-simulates its phases.
        let mut comm_cache: HashMap<(u8, u64, usize), f64> = HashMap::new();

        // Jitter-free base pass for the breakdown.
        let mut base = Walk::new(
            self,
            machine,
            profile,
            None,
            faults_active.then(|| FaultSession::new(plan, 0)),
            &mut comm_cache,
        );
        let base_total = base.run(&spmd.body);
        let (comp, comm, overhead, io) = (base.comp, base.comm, base.overhead, base.io);
        let base_events = base.events;
        let mut fault_stats = base.faults.take().map(|s| s.stats).unwrap_or_default();

        let mut totals = Vec::with_capacity(self.config.runs);
        let mut rng = StdRng::seed_from_u64(self.config.seed);
        for _ in 0..self.config.runs {
            // Per-run load factor plus per-phase jitter inside the walk.
            // The fault stream is drawn after the jitter seed so that a
            // zero-fault config consumes the RNG exactly as before.
            let jitter_rng = StdRng::seed_from_u64(rng.gen());
            let session = faults_active.then(|| FaultSession::new(plan, rng.gen()));
            let mut w = Walk::new(
                self,
                machine,
                profile,
                Some(jitter_rng),
                session,
                &mut comm_cache,
            );
            let t = w.run(&spmd.body);
            if let Some(s) = w.faults.take() {
                fault_stats.absorb(s.stats);
            }
            let timer = rng.gen_range(-1.0..1.0) * self.config.timer_tolerance;
            totals.push((t + timer).max(0.0));
        }
        let n = totals.len().max(1) as f64;
        let mean = totals.iter().sum::<f64>() / n;
        let var = totals.iter().map(|t| (t - mean).powi(2)).sum::<f64>() / n;
        if hpf_trace::enabled() {
            hpf_trace::counter_add("sim.simulations", 1);
            hpf_trace::counter_add("sim.runs", self.config.runs as u64);
            // Every run walks the same phase tree, so the events of the
            // base pass scale to the whole simulation.
            hpf_trace::counter_add("sim.events", base_events * (self.config.runs as u64 + 1));
            hpf_trace::counter_add("sim.fault.retries", fault_stats.retries);
            hpf_trace::counter_add("sim.fault.detours", fault_stats.detours);
            hpf_trace::counter_add("sim.fault.undeliverable", fault_stats.undeliverable);
        }
        SimResult {
            mean: if totals.is_empty() { base_total } else { mean },
            std: var.sqrt(),
            min: totals
                .iter()
                .copied()
                .fold(f64::INFINITY, f64::min)
                .min(base_total),
            max: totals.iter().copied().fold(0.0, f64::max).max(base_total),
            runs: self.config.runs,
            comp,
            comm,
            overhead,
            io,
            fault_stats,
        }
    }
}

/// Fault-injection state for one walk: the plan, a dedicated RNG stream for
/// loss draws (never shared with the jitter stream), and the accumulated
/// event counts.
pub struct FaultSession<'p> {
    pub plan: &'p FaultPlan,
    pub rng: StdRng,
    pub stats: FaultStats,
}

impl<'p> FaultSession<'p> {
    /// `stream` distinguishes walks (base pass, run 0, run 1, …) so each
    /// replays the same faults for a given (plan.seed, stream) pair.
    pub fn new(plan: &'p FaultPlan, stream: u64) -> Self {
        FaultSession {
            plan,
            rng: StdRng::seed_from_u64(plan.seed ^ stream),
            stats: FaultStats::default(),
        }
    }
}

/// One walk over the phase tree (one simulated run).
struct Walk<'a, 'm> {
    sim: &'a Simulator<'m>,
    /// The machine the walk computes against (clock-degraded under a
    /// slow-node fault plan, otherwise `sim.machine`).
    machine: &'a MachineModel,
    profile: Option<&'a ExecutionProfile>,
    rng: Option<StdRng>,
    faults: Option<FaultSession<'a>>,
    comp: f64,
    comm: f64,
    overhead: f64,
    io: f64,
    /// Phase-tree nodes visited (weighted by loop trips) — the walk's
    /// event count, reported to the trace registry as `sim.events`.
    events: u64,
    /// Memoized base durations of comm phases keyed by (op, bytes, p),
    /// owned by [`Simulator::simulate`] so the table persists across every
    /// walk of a simulation. Bypassed when faults are active: loss draws
    /// make each phase instance distinct, so caching would freeze the
    /// first draw.
    comm_cache: &'a mut HashMap<(u8, u64, usize), f64>,
}

impl<'a, 'm> Walk<'a, 'm> {
    fn new(
        sim: &'a Simulator<'m>,
        machine: &'a MachineModel,
        profile: Option<&'a ExecutionProfile>,
        rng: Option<StdRng>,
        faults: Option<FaultSession<'a>>,
        comm_cache: &'a mut HashMap<(u8, u64, usize), f64>,
    ) -> Self {
        Walk {
            sim,
            machine,
            profile,
            rng,
            faults,
            comp: 0.0,
            comm: 0.0,
            overhead: 0.0,
            io: 0.0,
            events: 0,
            comm_cache,
        }
    }

    fn jitter(&mut self) -> f64 {
        match &mut self.rng {
            None => 1.0,
            Some(r) => {
                let j = self.sim.config.load_jitter;
                // Load can only *add* time: one-sided noise.
                1.0 + r.gen_range(0.0..(2.0 * j).max(1e-12))
            }
        }
    }

    fn run(&mut self, nodes: &[SpmdNode]) -> f64 {
        let mut t = 0.0;
        for n in nodes {
            t += self.node(n);
        }
        t
    }

    fn node(&mut self, n: &SpmdNode) -> f64 {
        self.events += 1;
        match n {
            SpmdNode::Seq(s) => self.seq(s),
            SpmdNode::Comp(c) => self.comp_phase(c),
            SpmdNode::Comm(c) => self.comm_phase(c),
            SpmdNode::Io { phase, .. } => self.io_phase(phase),
            SpmdNode::Loop {
                trips, body, span, ..
            } => {
                // Actual trip count from the execution profile when present.
                let trips = match self.profile.and_then(|p| p.get(*span)) {
                    Some(st) if st.executions > 0 && st.iterations > 0 => {
                        (st.iterations as f64 / st.executions as f64).round() as u64
                    }
                    _ => *trips,
                };
                let p = &self.machine.node_processing;
                let mut t = p.op_time(OpClass::LoopSetup) * DISTORTION.loop_ovh;
                // Walk the body once and scale by the trip count (identical
                // trips absent per-trip profile variation); the breakdown
                // accumulators are scaled by the same factor.
                if trips > 0 {
                    let (c0, m0, o0) = (self.comp, self.comm, self.overhead);
                    let body_t = self.run(body);
                    let k = trips as f64;
                    self.comp = c0 + (self.comp - c0) * k;
                    self.comm = m0 + (self.comm - m0) * k;
                    let per_trip_ovh = p.op_time(OpClass::LoopIter) * DISTORTION.loop_ovh;
                    self.overhead = o0 + (self.overhead - o0) * k + k * per_trip_ovh;
                    t += k * (body_t + per_trip_ovh);
                }
                t * self.jitter()
            }
            SpmdNode::Branch {
                arms,
                else_body,
                span,
            } => {
                // Arm probability from the profile where available.
                let taken = self
                    .profile
                    .and_then(|p| p.get(*span))
                    .map(|st| {
                        if st.mask_total == 0 {
                            0.5
                        } else {
                            st.mask_true as f64 / st.mask_total as f64
                        }
                    })
                    .unwrap_or(0.5);
                let pnode = &self.machine.node_processing;
                let mut t = pnode.op_time(OpClass::Branch) * DISTORTION.mask_branch;
                let mut consumed = 0.0f64;
                for (i, (w, body)) in arms.iter().enumerate() {
                    let prob = if i == 0 { taken } else { *w * (1.0 - taken) };
                    consumed += prob;
                    t += prob * self.run(body);
                }
                let else_p = (1.0 - consumed).max(0.0);
                if !else_body.is_empty() {
                    t += else_p * self.run(else_body);
                }
                t
            }
        }
    }

    fn seq(&mut self, s: &SeqBlock) -> f64 {
        let t = self.ops_time(&s.ops, 0.95) * self.jitter();
        self.comp += t;
        t
    }

    fn comp_phase(&mut self, c: &CompPhase) -> f64 {
        let p = &self.machine.node_processing;

        // Ground truth: take actual per-execution iteration counts (and
        // mask outcomes) from the functional-interpreter profile when
        // available; the static counts are the predictor's estimate. The
        // busiest node's share of the true iteration space is approximated
        // by the statically computed ownership fraction.
        let frac = if c.total_iters > 0 {
            c.max_node_iters() as f64 / c.total_iters as f64
        } else {
            1.0
        };
        let stats = self
            .profile
            .and_then(|pr| pr.get(c.span))
            .filter(|st| st.executions > 0);
        // (mask-evaluation iterations, mask-true body iterations) per node.
        let (iters, body_iters) = match stats {
            Some(st) if st.mask_total > 0 => {
                let tuples = st.mask_total as f64 / st.executions as f64;
                let active = st.iterations as f64 / st.executions as f64;
                (tuples * frac, active * frac)
            }
            Some(st) if st.iterations > 0 => {
                let it = st.iterations as f64 / st.executions as f64 * frac;
                (it, it)
            }
            _ => {
                let it = c.max_node_iters() as f64;
                (it, it * c.mask_density_hint.unwrap_or(1.0))
            }
        };
        let density = if iters > 0.0 { body_iters / iters } else { 0.0 };

        // The simulator's cache model: the predictor's streaming model plus
        // conflict misses between the multiple arrays of a stencil (the
        // 8 KB direct-mapped-ish cache thrashes when arrays collide).
        let hit = {
            let base = self
                .sim
                .machine
                .node_memory
                .hit_ratio(c.working_set_bytes, 4, c.locality);
            let conflict = if c.working_set_bytes > self.machine.node_memory.dcache_bytes {
                0.93
            } else {
                0.995
            };
            (base * conflict).clamp(0.0, 1.0)
        };

        let mut per_iter = self.ops_time_hit(&c.per_iter, hit);
        if let Some(body) = &c.masked_ops {
            // Mispredicted/masked branches cost extra on the real pipeline.
            per_iter += density * self.ops_time_hit(body, hit)
                + p.op_time(OpClass::Branch) * (DISTORTION.mask_branch - 1.0);
        }
        let loop_ovh = iters * p.op_time(OpClass::LoopIter) * DISTORTION.loop_ovh
            + c.loop_depth as f64 * p.op_time(OpClass::LoopSetup) * DISTORTION.loop_ovh;

        let t = (iters * per_iter + loop_ovh) * self.jitter();
        self.comp += iters * per_iter;
        self.overhead += loop_ovh;
        t
    }

    fn comm_phase(&mut self, c: &CommPhase) -> f64 {
        let base = if self.faults.is_some() {
            // Loss draws make each phase instance distinct — no memoization.
            collective_base_time_with(
                self.machine,
                c.op,
                c.participants,
                c.bytes_per_node,
                self.faults.as_mut(),
            )
        } else {
            let key = (c.op as u8, c.bytes_per_node, c.participants);
            match self.comm_cache.get(&key) {
                Some(t) => *t,
                None => {
                    let t = self.comm_base(c);
                    self.comm_cache.insert(key, t);
                    t
                }
            }
        };
        // Software packing: strided boundaries pay a miss per element.
        let pack = {
            let comm = &self.machine.comm;
            let sw = comm.pack_time(c.bytes_per_node) * DISTORTION.comm_sw;
            if c.contiguous {
                sw
            } else {
                let elems = c.bytes_per_node as f64 / 4.0;
                sw + 2.0 * elems * self.machine.node_memory.access_time(0.0) * DISTORTION.mem
            }
        };
        let t = (base + pack) * self.jitter();
        self.comm += base;
        self.overhead += pack;
        t
    }

    /// Event-simulated base duration of a communication phase.
    fn comm_base(&self, c: &CommPhase) -> f64 {
        collective_base_time(self.machine, c.op, c.participants, c.bytes_per_node)
    }

    fn io_phase(&mut self, p: &hpf_io::IoPhase) -> f64 {
        // Deterministic for a fixed machine and descriptor (the I/O servers
        // are not subject to network fault injection: the subsystem stays
        // healthy under node/link faults, matching `FaultPlan::degrade`).
        let base = io_base_time(self.machine, p);
        let t = base * self.jitter();
        self.io += base;
        t
    }

    fn ops_time(&self, ops: &OpCounts, hit: f64) -> f64 {
        self.ops_time_hit(ops, hit)
    }

    fn ops_time_hit(&self, ops: &OpCounts, hit: f64) -> f64 {
        sim_ops_time(self.machine, ops, hit)
    }
}

/// Event-simulated base duration of one collective (no packing, no jitter):
/// the benchmarking-run primitive used both by the simulator and by the
/// characterization driver ([`calibrate`]).
pub fn collective_base_time(
    machine: &MachineModel,
    op: CollectiveOp,
    participants: usize,
    bytes_per_node: u64,
) -> f64 {
    collective_base_time_with(machine, op, participants, bytes_per_node, None)
}

/// One collective stage under an optional fault session. When a stage sees
/// any fault event (retransmission, detour, undeliverable message), the
/// collective's participants re-synchronize before the next stage — the
/// stage-level recovery barrier — charged at the comm component's
/// synchronization overhead.
fn stage_time(
    cube: Hypercube,
    comm: &CommComponent,
    nodes: usize,
    ms: &[Message],
    faults: &mut Option<&mut FaultSession<'_>>,
    topo: Option<&dyn Topology>,
) -> f64 {
    if let Some(topo) = topo {
        // Non-hypercube machine: the generic occupancy walk. Network-level
        // fault injection (loss draws, detour routing) is hypercube-only;
        // degraded operation of other backends is modeled analytically via
        // `MachineModel::degrade` upstream, so the fault session is not
        // consumed here.
        return simulate_phase_topo(topo, comm, nodes, ms).duration;
    }
    match faults {
        None => simulate_phase(cube, comm, nodes, ms).duration,
        Some(s) => {
            let (timing, st) = simulate_phase_faulty(cube, comm, nodes, ms, s.plan, &mut s.rng);
            let recovery = if s.plan.needs_recovery() && st.any() {
                comm.sync_overhead_s
            } else {
                0.0
            };
            s.stats.absorb(st);
            timing.duration + recovery
        }
    }
}

/// [`collective_base_time`] with fault injection: every stage runs through
/// the fault-aware network walk and pays a recovery barrier when it had to
/// retransmit or reroute.
pub fn collective_base_time_with(
    machine: &MachineModel,
    op: CollectiveOp,
    participants: usize,
    bytes_per_node: u64,
    mut faults: Option<&mut FaultSession<'_>>,
) -> f64 {
    let nodes = participants.max(1);
    // The collective runs on the subcube spanning its participants (which
    // may exceed the configured machine during characterization probes).
    // Collective *schedules* are always built over this virtual hypercube;
    // only per-message routing differs between physical topologies.
    let cube = machine::Hypercube::fitting(nodes.max(machine.nodes));
    let comm = &machine.comm;
    if nodes <= 1 {
        return 0.0;
    }
    let topo: Option<Box<dyn Topology>> = match &machine.topology {
        machine::TopologyDesc::Hypercube => None,
        desc => Some(
            hpf_machines::build_topology(desc, machine.nodes)
                .expect("machine topology validated by the registry"),
        ),
    };
    let topo = topo.as_deref();
    match op {
        CollectiveOp::Shift => {
            let ms = patterns::shift(nodes, bytes_per_node);
            stage_time(cube, comm, nodes, &ms, &mut faults, topo)
        }
        CollectiveOp::Reduce | CollectiveOp::ReduceLoc | CollectiveOp::Barrier => {
            let bytes = match op {
                CollectiveOp::ReduceLoc => bytes_per_node + 4,
                CollectiveOp::Barrier => 0,
                _ => bytes_per_node,
            };
            let mut t = 0.0;
            for stage in patterns::reduce_stages(cube, nodes, bytes.max(4)) {
                t += stage_time(cube, comm, nodes, &stage, &mut faults, topo);
                t += machine.node_processing.op_time(OpClass::FAdd) * (bytes as f64 / 4.0).max(1.0);
            }
            t
        }
        CollectiveOp::Broadcast => {
            let mut t = 0.0;
            for stage in patterns::broadcast_stages(cube, nodes, bytes_per_node) {
                t += stage_time(cube, comm, nodes, &stage, &mut faults, topo);
            }
            t
        }
        CollectiveOp::AllToAll => {
            let per_pair = (bytes_per_node / nodes as u64).max(4);
            let mut t = 0.0;
            for round in patterns::all_to_all_rounds(nodes, per_pair) {
                t += stage_time(cube, comm, nodes, &round, &mut faults, topo);
            }
            t
        }
        CollectiveOp::Gather | CollectiveOp::Scatter => {
            let ms = patterns::gather(cube, nodes, bytes_per_node);
            stage_time(cube, comm, nodes, &ms, &mut faults, topo)
        }
    }
}

/// Event-simulated base duration of one parallel-I/O phase (no jitter):
/// striped blocks assigned round-robin to per-server FIFO disk queues, each
/// block a routed message serialized at its server's NIC. This is the DES
/// ground truth the analytic `hpf_io::phase_cost` model predicts and the
/// I/O characterization pass fits against.
pub fn io_base_time(machine: &MachineModel, phase: &hpf_io::IoPhase) -> f64 {
    let io = &machine.io;
    if phase.total_bytes == 0 {
        return 0.0;
    }
    let servers = phase.resolved_servers(io, machine.nodes);
    let block = (io.stripe_bytes * phase.stripe_factor.max(1) as u64).max(1);
    let comm = &machine.comm;
    let hops = ((machine.nodes.max(2) as f64).log2() / 2.0).max(1.0);
    let nblocks = phase.total_bytes.div_ceil(block);

    // Event loop: block i lands on server i mod S once its NIC is free,
    // then queues FIFO behind the disk.
    let mut nic_free = vec![0.0f64; servers];
    let mut disk_free = vec![0.0f64; servers];
    let mut done = 0.0f64;
    for i in 0..nblocks {
        let b = (phase.total_bytes - i * block).min(block);
        let lat = if b <= comm.short_threshold {
            comm.short_latency_s
        } else {
            comm.long_latency_s
        };
        let net = (lat + hops * comm.per_hop_s + b as f64 * comm.per_byte_s) * DISTORTION.comm_sw;
        let s = (i % servers as u64) as usize;
        let arrive = nic_free[s] + net;
        nic_free[s] = arrive;
        let start = arrive.max(disk_free[s]);
        disk_free[s] =
            start + io.disk_latency_s + io.server_overhead_s + b as f64 / io.disk_bandwidth_bps;
        done = done.max(disk_free[s]);
    }

    // Compute-side packing (software cost, distorted like other comm
    // software paths) and, for checkpoints, the shared commit term.
    let mut t = done + comm.pack_time(phase.bytes_per_node) * DISTORTION.comm_sw;
    if phase.kind == hpf_io::IoKind::Checkpoint {
        t += hpf_io::checkpoint_commit_s(io, comm, phase);
    }
    t
}

/// Run the machine characterization (§4.4): benchmark every collective at a
/// spread of message sizes and fit `α + β·m` per (op, p), and measure the
/// compute-scale of a representative operation mix against instruction-count
/// estimates. Returns the machine with its calibration installed — the
/// "off-line, performed only once" system abstraction step.
pub fn calibrate(nodes: usize) -> MachineModel {
    calibrate_params(machine::ipsc860(nodes))
}

/// Calibrate a registered machine backend: fetch its parameter tables for
/// `nodes` (typed error on an out-of-range node count) and run the same
/// §4.4 benchmarking/fitting pass [`calibrate`] runs for the iPSC/860 —
/// against the backend's own topology, since [`collective_base_time`]
/// routes over whatever `MachineModel::topology` describes.
pub fn calibrate_backend(
    backend: &dyn hpf_machines::MachineModel,
    nodes: usize,
) -> Result<MachineModel, TopologyError> {
    Ok(calibrate_params(backend.params(nodes)?))
}

/// The characterization pass itself, over caller-supplied parameter
/// tables. `calibrate(n)` is exactly `calibrate_params(ipsc860(n))`.
pub fn calibrate_params(mut machine: MachineModel) -> MachineModel {
    let nodes = machine.nodes;
    let mut cal = machine::Calibration {
        compute_scale: compute_scale(&machine),
        comm: Default::default(),
        io: Default::default(),
    };

    let ops = [
        CollectiveOp::Shift,
        CollectiveOp::Reduce,
        CollectiveOp::ReduceLoc,
        CollectiveOp::Broadcast,
        CollectiveOp::AllToAll,
        CollectiveOp::Gather,
        CollectiveOp::Scatter,
        CollectiveOp::Barrier,
    ];
    // Sample densely around the NX short/long regime boundary so the
    // two-segment fit captures the latency jump the library exhibits.
    let boundary = machine.comm.short_threshold;
    let sizes = [
        4u64, 16, 48, 80, 100, 128, 192, 256, 512, 1024, 4096, 16384, 65536,
    ];
    let mut p = 2usize;
    while p <= nodes.max(2) {
        for op in ops {
            let samples: Vec<(u64, f64)> = sizes
                .iter()
                .map(|&b| (b, collective_base_time(&machine, op, p, b)))
                .collect();
            cal.comm.insert(
                machine::Calibration::key(op, p),
                machine::PiecewiseCost::fit(&samples, boundary),
            );
        }
        if p >= nodes {
            break;
        }
        p *= 2;
    }

    // I/O characterization: benchmark striped writes per (server count,
    // participant count) at a spread of phase sizes and fit the same
    // two-segment model, with the regime boundary at one stripe unit.
    let io_sizes = [1024u64, 4096, 16_384, 65_536, 262_144, 1_048_576, 4_194_304];
    let io_boundary = machine.io.stripe_bytes.max(1);
    let mut p = 1usize;
    while p <= nodes.max(1) {
        let mut s = 1usize;
        while s <= p {
            let samples: Vec<(u64, f64)> = io_sizes
                .iter()
                .map(|&b| {
                    let probe = hpf_io::IoPhase {
                        kind: hpf_io::IoKind::Write,
                        arrays: vec!["probe".into()],
                        total_bytes: b,
                        bytes_per_node: b.div_ceil(p as u64),
                        participants: p,
                        servers: s,
                        stripe_factor: 1,
                    };
                    (b, io_base_time(&machine, &probe))
                })
                .collect();
            cal.io.insert(
                machine::Calibration::io_key(s, p),
                machine::PiecewiseCost::fit(&samples, io_boundary),
            );
            s *= 2;
        }
        if p >= nodes {
            break;
        }
        p *= 2;
    }
    machine.calibration = Some(cal);
    machine
}

/// Measured/counted compute-time ratio over a characterization mix.
fn compute_scale(machine: &MachineModel) -> f64 {
    let mix = OpCounts {
        fadd: 2.0,
        fmul: 1.5,
        fdiv: 0.1,
        ftrans: 0.05,
        int_ops: 2.0,
        imul: 0.2,
        idiv: 0.02,
        cmp: 0.5,
        logical: 0.2,
        loads: 2.5,
        stores: 1.0,
        index: 2.5,
        calls: 0.02,
        branches: 0.3,
    };
    let hit = 0.8;
    let measured = sim_ops_time(machine, &mix, hit);
    let p = &machine.node_processing;
    let m = &machine.node_memory;
    let counted = mix.fadd * p.op_time(OpClass::FAdd)
        + mix.fmul * p.op_time(OpClass::FMul)
        + mix.fdiv * p.op_time(OpClass::FDiv)
        + mix.ftrans * p.op_time(OpClass::FTranscendental)
        + mix.int_ops * p.op_time(OpClass::IntOp)
        + mix.imul * p.op_time(OpClass::IntMul)
        + mix.idiv * p.op_time(OpClass::IntDiv)
        + mix.cmp * p.op_time(OpClass::Compare)
        + mix.logical * p.op_time(OpClass::Logical)
        + mix.index * p.op_time(OpClass::Index)
        + mix.calls * p.op_time(OpClass::Call)
        + mix.branches * p.op_time(OpClass::Branch)
        + mix.mem_refs() * m.access_time(hit);
    if counted > 0.0 {
        measured / counted
    } else {
        1.0
    }
}

/// The simulator's (distorted) op-mix timing — the "measured" side of the
/// characterization runs.
pub fn sim_ops_time(machine: &MachineModel, ops: &OpCounts, hit: f64) -> f64 {
    let p = &machine.node_processing;
    let m = &machine.node_memory;
    let d = DISTORTION;
    let fp = (ops.fadd * p.op_time(OpClass::FAdd)
        + ops.fmul * p.op_time(OpClass::FMul)
        + ops.fdiv * p.op_time(OpClass::FDiv)
        + ops.ftrans * p.op_time(OpClass::FTranscendental))
        * d.fp;
    let int = (ops.int_ops * p.op_time(OpClass::IntOp)
        + ops.imul * p.op_time(OpClass::IntMul)
        + ops.idiv * p.op_time(OpClass::IntDiv)
        + ops.cmp * p.op_time(OpClass::Compare)
        + ops.logical * p.op_time(OpClass::Logical)
        + ops.index * p.op_time(OpClass::Index))
        * d.int;
    let ctl = (ops.calls * p.op_time(OpClass::Call) + ops.branches * p.op_time(OpClass::Branch))
        * d.loop_ovh;
    let mem = ops.mem_refs() * m.access_time(hit) * d.mem;
    fp + int + ctl + mem
}
