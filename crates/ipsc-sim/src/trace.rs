//! Per-node execution traces of simulated runs — the machine-side analog of
//! ParaGraph's utilization displays: for every node, busy / communication /
//! idle intervals over the loosely synchronous phase sequence.

use crate::simulator::{collective_base_time, sim_ops_time};
use hpf_compiler::{CompPhase, SpmdNode, SpmdProgram};
use hpf_eval::ExecutionProfile;
use machine::{MachineModel, OpClass};

/// What a node was doing during an interval.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Activity {
    /// Local computation.
    Busy,
    /// Communication (library + wire).
    Comm,
    /// Parallel I/O (striped server transfers + disk service).
    Io,
    /// Waiting at the loosely synchronous phase boundary.
    Idle,
}

/// One per-node interval.
#[derive(Debug, Clone)]
pub struct TraceEvent {
    pub node: usize,
    pub start_s: f64,
    pub end_s: f64,
    pub activity: Activity,
    pub label: String,
    /// How many times this interval repeats back-to-back (loop compression).
    pub repeat: u64,
}

/// A complete trace.
#[derive(Debug, Clone, Default)]
pub struct SimTrace {
    pub nodes: usize,
    pub events: Vec<TraceEvent>,
    pub total_s: f64,
}

impl SimTrace {
    /// Fraction of the run each node spent in each activity.
    pub fn utilization(&self) -> Vec<(f64, f64, f64)> {
        let mut acc = vec![(0.0f64, 0.0f64, 0.0f64); self.nodes];
        for e in &self.events {
            let d = (e.end_s - e.start_s) * e.repeat as f64;
            let a = &mut acc[e.node];
            match e.activity {
                Activity::Busy => a.0 += d,
                // I/O counts toward the communication share: from a compute
                // node's view it is time spent moving data off-node.
                Activity::Comm | Activity::Io => a.1 += d,
                Activity::Idle => a.2 += d,
            }
        }
        acc.iter()
            .map(|(b, c, i)| {
                let t = (b + c + i).max(1e-30);
                (b / t, c / t, i / t)
            })
            .collect()
    }

    /// Render an ASCII Gantt chart (one row per node, `width` columns).
    pub fn gantt(&self, width: usize) -> String {
        let mut out = String::new();
        let scale = width as f64 / self.total_s.max(1e-30);
        for node in 0..self.nodes {
            let mut row = vec!['.'; width];
            for e in self.events.iter().filter(|e| e.node == node) {
                let reps = e.repeat.max(1) as f64;
                let span_end = e.start_s + (e.end_s - e.start_s) * reps;
                let a = (e.start_s * scale) as usize;
                let b = ((span_end * scale) as usize).min(width);
                let ch = match e.activity {
                    Activity::Busy => '#',
                    Activity::Comm => '~',
                    Activity::Io => '=',
                    Activity::Idle => '.',
                };
                for c in row.iter_mut().take(b).skip(a.min(width)) {
                    if ch != '.' {
                        *c = ch;
                    }
                }
            }
            out.push_str(&format!("node {node}: "));
            out.extend(row);
            out.push('\n');
        }
        out.push_str("         # busy   ~ communication   = i/o   . idle\n");
        out
    }
}

/// Trace one jitter-free run of the program.
pub fn trace_program(
    machine: &MachineModel,
    spmd: &SpmdProgram,
    profile: Option<&ExecutionProfile>,
) -> SimTrace {
    let mut tr = Tracer {
        machine,
        profile,
        clock: 0.0,
        events: Vec::new(),
        nodes: spmd.nodes,
    };
    tr.walk(&spmd.body, 1);
    SimTrace {
        nodes: spmd.nodes,
        total_s: tr.clock,
        events: tr.events,
    }
}

struct Tracer<'a> {
    machine: &'a MachineModel,
    profile: Option<&'a ExecutionProfile>,
    clock: f64,
    events: Vec<TraceEvent>,
    nodes: usize,
}

impl<'a> Tracer<'a> {
    fn emit(&mut self, node: usize, dur: f64, act: Activity, label: &str, repeat: u64) {
        if dur <= 0.0 {
            return;
        }
        self.events.push(TraceEvent {
            node,
            start_s: self.clock,
            end_s: self.clock + dur,
            activity: act,
            label: label.to_string(),
            repeat,
        });
    }

    fn walk(&mut self, nodes: &[SpmdNode], repeat: u64) {
        for n in nodes {
            match n {
                SpmdNode::Seq(s) => {
                    let t = sim_ops_time(self.machine, &s.ops, 0.95);
                    for node in 0..self.nodes {
                        self.emit(node, t, Activity::Busy, &s.label, repeat);
                    }
                    self.clock += t;
                }
                SpmdNode::Comp(c) => {
                    let phase = self.comp_duration(c);
                    for (node, t) in phase.iter().enumerate() {
                        self.emit(node, *t, Activity::Busy, &c.label, repeat);
                        let max = phase.iter().copied().fold(0.0, f64::max);
                        let idle = max - t;
                        if idle > 0.0 {
                            self.events.push(TraceEvent {
                                node,
                                start_s: self.clock + t,
                                end_s: self.clock + max,
                                activity: Activity::Idle,
                                label: format!("wait after {}", c.label),
                                repeat,
                            });
                        }
                    }
                    self.clock += phase.iter().copied().fold(0.0, f64::max);
                }
                SpmdNode::Comm(c) => {
                    let t =
                        collective_base_time(self.machine, c.op, c.participants, c.bytes_per_node)
                            + self.machine.comm.pack_time(c.bytes_per_node);
                    for node in 0..self.nodes {
                        self.emit(node, t, Activity::Comm, &c.label, repeat);
                    }
                    self.clock += t;
                }
                SpmdNode::Io { phase, .. } => {
                    let t = crate::simulator::io_base_time(self.machine, phase);
                    let label = phase.outline();
                    for node in 0..self.nodes {
                        self.emit(node, t, Activity::Io, &label, repeat);
                    }
                    self.clock += t;
                }
                SpmdNode::Loop {
                    trips, body, span, ..
                } => {
                    let trips = match self.profile.and_then(|p| p.get(*span)) {
                        Some(st) if st.executions > 0 && st.iterations > 0 => {
                            (st.iterations as f64 / st.executions as f64).round() as u64
                        }
                        _ => *trips,
                    };
                    if trips == 0 {
                        continue;
                    }
                    // Walk the body once; mark events as repeating.
                    let start = self.clock;
                    self.walk(body, repeat * trips);
                    let body_t = self.clock - start;
                    self.clock = start + body_t * trips as f64;
                }
                SpmdNode::Branch {
                    arms, else_body, ..
                } => {
                    // Trace the most likely arm.
                    let best = arms
                        .iter()
                        .max_by(|a, b| a.0.total_cmp(&b.0))
                        .map(|(_, b)| b.as_slice())
                        .unwrap_or(else_body.as_slice());
                    self.walk(best, repeat);
                }
            }
        }
    }

    fn comp_duration(&self, c: &CompPhase) -> Vec<f64> {
        let p = &self.machine.node_processing;
        let hit = self
            .machine
            .node_memory
            .hit_ratio(c.working_set_bytes, 4, c.locality);
        let density = c.mask_density_hint.unwrap_or(1.0);
        let mut per_iter = sim_ops_time(self.machine, &c.per_iter, hit);
        if let Some(body) = &c.masked_ops {
            per_iter += density * sim_ops_time(self.machine, body, hit);
        }
        c.per_node_iters
            .iter()
            .map(|&n| n as f64 * (per_iter + p.op_time(OpClass::LoopIter)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpf_compiler::{compile, CompileOptions};
    use hpf_lang::{analyze, parse_program};
    use machine::ipsc860;
    use std::collections::BTreeMap;

    fn trace_src(src: &str, nodes: usize) -> SimTrace {
        let p = parse_program(src).unwrap();
        let a = analyze(&p, &BTreeMap::new()).unwrap();
        let spmd = compile(
            &a,
            &CompileOptions {
                nodes,
                ..Default::default()
            },
        )
        .unwrap();
        let m = ipsc860(nodes);
        trace_program(&m, &spmd, None)
    }

    const SRC: &str = "
PROGRAM T
INTEGER, PARAMETER :: N = 128
REAL A(N), S
!HPF$ PROCESSORS P(4)
!HPF$ DISTRIBUTE A(BLOCK) ONTO P
FORALL (I = 1:N) A(I) = I * 0.5
S = SUM(A)
END
";

    #[test]
    fn trace_covers_all_nodes() {
        let tr = trace_src(SRC, 4);
        assert_eq!(tr.nodes, 4);
        assert!(tr.total_s > 0.0);
        for node in 0..4 {
            assert!(tr.events.iter().any(|e| e.node == node));
        }
    }

    #[test]
    fn utilization_fractions_sum_to_one() {
        let tr = trace_src(SRC, 4);
        for (b, c, i) in tr.utilization() {
            assert!((b + c + i - 1.0).abs() < 1e-9);
            assert!(b > 0.0, "every node computes");
        }
    }

    #[test]
    fn comm_appears_in_trace_for_reduction() {
        let tr = trace_src(SRC, 4);
        assert!(tr.events.iter().any(|e| e.activity == Activity::Comm));
    }

    #[test]
    fn imbalanced_forall_produces_idle() {
        let src = "
PROGRAM T
INTEGER, PARAMETER :: N = 128
REAL A(N)
!HPF$ PROCESSORS P(4)
!HPF$ DISTRIBUTE A(BLOCK) ONTO P
FORALL (I = 1:32) A(I) = 1.0
END
";
        // Only node 0 owns the touched range: others idle.
        let tr = trace_src(src, 4);
        assert!(tr
            .events
            .iter()
            .any(|e| e.activity == Activity::Idle && e.node != 0));
        let util = tr.utilization();
        assert!(util[0].0 > util[3].0, "node 0 busier than node 3");
    }

    #[test]
    fn gantt_renders() {
        let tr = trace_src(SRC, 4);
        let g = tr.gantt(60);
        assert_eq!(g.lines().count(), 5);
        assert!(g.contains("node 0:"));
        assert!(g.contains('#'));
    }

    #[test]
    fn single_node_trace_has_no_comm() {
        let tr = trace_src(SRC, 1);
        assert!(tr.events.iter().all(|e| e.activity != Activity::Comm));
    }
}
