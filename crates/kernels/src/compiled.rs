//! # Compile-once kernel artifacts
//!
//! The paper's interpretation loop (§5) re-evaluates the *same* kernel at
//! many `(N, P)` points. Lexing and parsing the generated source again for
//! every point is pure waste: the program text only differs in the `N =
//! <value>` PARAMETER and the `PROCESSORS P(<shape>)` directive, and both
//! are re-bindable *after* parsing — `N` through the semantic analyzer's
//! critical-variable overrides, `P` through
//! [`CompileOptions::grid_extents`](hpf_compiler::CompileOptions).
//!
//! [`CompiledKernel`] captures that: it parses one canonical instance of a
//! kernel and then [`bind`](CompiledKernel::bind)s it to any sweep point,
//! producing the analyzed program (for profiling) and the SPMD program
//! (for prediction and simulation) without touching the lexer or parser.

use std::collections::BTreeMap;

use hpf_compiler::{compile, CompileError, CompileOptions, SpmdProgram};
use hpf_lang::{analyze, parse_program, AnalyzedProgram, LangError};

use crate::suite::Kernel;

/// Why a [`CompiledKernel::bind`] (or [`CompiledKernel::new`]) failed.
#[derive(Debug)]
pub enum KernelBindError {
    /// Parsing or semantic analysis rejected the program.
    Lang(LangError),
    /// The compiler back half (partition/lower) rejected the program.
    Compile(CompileError),
}

impl std::fmt::Display for KernelBindError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            KernelBindError::Lang(e) => write!(f, "language error: {e}"),
            KernelBindError::Compile(e) => write!(f, "compile error: {e}"),
        }
    }
}

impl std::error::Error for KernelBindError {}

impl From<LangError> for KernelBindError {
    fn from(e: LangError) -> Self {
        KernelBindError::Lang(e)
    }
}

impl From<CompileError> for KernelBindError {
    fn from(e: CompileError) -> Self {
        KernelBindError::Compile(e)
    }
}

/// A kernel parsed once, re-bindable to any `(n, procs)` sweep point.
///
/// The held AST is the *canonical* instance — generated at the kernel's
/// minimum problem size on one processor — but the baked-in literals are
/// never trusted at bind time: `N` is overridden through semantic
/// analysis and the processor grid through
/// [`CompileOptions::grid_extents`], so a bound artifact is semantically
/// identical to compiling freshly generated source for the same point.
#[derive(Debug, Clone)]
pub struct CompiledKernel {
    kernel: Kernel,
    source: String,
    program: hpf_lang::ast::Program,
}

impl CompiledKernel {
    /// Parse the canonical instance of `kernel`. One lexer/parser pass,
    /// ever, per session.
    pub fn new(kernel: &Kernel) -> Result<Self, KernelBindError> {
        let source = kernel.source(kernel.size_range.0, 1);
        let program = parse_program(&source)?;
        Ok(CompiledKernel {
            kernel: kernel.clone(),
            source,
            program,
        })
    }

    /// The kernel this artifact was built from.
    pub fn kernel(&self) -> &Kernel {
        &self.kernel
    }

    /// The canonical source text the held AST was parsed from — a stable
    /// identity for the artifact (two kernels with the same canonical
    /// source parse to the same program, so anything derived purely from
    /// the AST plus a critical-variable binding can be shared by key).
    pub fn canonical_source(&self) -> &str {
        &self.source
    }

    /// Re-bind the artifact to a sweep point: override the critical
    /// variable `N`, pin the processor grid, and run the back half of the
    /// compiler. Extra [`CompileOptions`] knobs (hints, loop reorder) pass
    /// through from `opts`; its `nodes` is replaced. When the caller left
    /// `grid_extents` unset, the grid defaults to the exact shape the
    /// source generator would emit for `procs`; a caller-supplied shape is
    /// honored verbatim (validated downstream by `partition_onto`), which
    /// is the hook directive-space enumeration uses to sweep every
    /// factorization of the node budget.
    pub fn bind(
        &self,
        n: i64,
        procs: usize,
        opts: &CompileOptions,
    ) -> Result<(AnalyzedProgram, SpmdProgram), KernelBindError> {
        let mut overrides = BTreeMap::new();
        overrides.insert("N".to_string(), n);
        let analyzed = analyze(&self.program, &overrides)?;
        let mut opts = opts.clone();
        opts.nodes = procs;
        if opts.grid_extents.is_none() {
            opts.grid_extents = Some(self.kernel.grid_extents(procs));
        }
        let spmd = compile(&analyzed, &opts)?;
        Ok((analyzed, spmd))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::suite::all_kernels;

    /// Debug-format with `Span { .. }` payloads blanked: the canonical and
    /// fresh sources have different literal widths, so byte offsets shift,
    /// but spans carry no timing semantics.
    fn spanless_debug<T: std::fmt::Debug>(v: &T) -> String {
        let s = format!("{v:?}");
        let mut out = String::with_capacity(s.len());
        let mut rest = s.as_str();
        while let Some(i) = rest.find("Span {") {
            out.push_str(&rest[..i]);
            out.push_str("Span { .. }");
            let tail = &rest[i..];
            let close = tail.find('}').expect("unterminated Span debug");
            rest = &tail[close + 1..];
        }
        out.push_str(rest);
        out
    }

    /// A bound artifact must be indistinguishable (at the SPMD level) from
    /// compiling freshly generated source for the same `(n, procs)`.
    #[test]
    fn bound_artifact_matches_fresh_compile() {
        for k in all_kernels() {
            let artifact = CompiledKernel::new(&k).unwrap();
            let n = k.size_range.1.min(256).max(k.size_range.0);
            for &procs in &[1usize, 4, 8] {
                let (_, bound) = artifact
                    .bind(n as i64, procs, &CompileOptions::default())
                    .unwrap();

                let src = k.source(n, procs);
                let fresh_prog = parse_program(&src).unwrap();
                let fresh_analyzed = analyze(&fresh_prog, &BTreeMap::new()).unwrap();
                let fresh = compile(
                    &fresh_analyzed,
                    &CompileOptions {
                        nodes: procs,
                        ..Default::default()
                    },
                )
                .unwrap();

                assert_eq!(
                    bound.grid.extents, fresh.grid.extents,
                    "{} n={n} p={procs}: grid shape drifted",
                    k.name
                );
                assert_eq!(
                    bound.nodes, fresh.nodes,
                    "{} n={n} p={procs}: node count drifted",
                    k.name
                );
                let mut bound_flat = Vec::new();
                let mut fresh_flat = Vec::new();
                hpf_compiler::flatten_phases(&bound.body, &mut bound_flat);
                hpf_compiler::flatten_phases(&fresh.body, &mut fresh_flat);
                assert_eq!(
                    spanless_debug(&bound_flat),
                    spanless_debug(&fresh_flat),
                    "{} n={n} p={procs}: SPMD phases drifted",
                    k.name
                );
            }
        }
    }

    /// Binding twice at the same point yields the same SPMD program —
    /// the artifact is immutable and bind is a pure function of (n, p).
    #[test]
    fn bind_is_deterministic() {
        let k = all_kernels().into_iter().find(|k| k.name == "PI").unwrap();
        let artifact = CompiledKernel::new(&k).unwrap();
        let (_, a) = artifact.bind(512, 4, &CompileOptions::default()).unwrap();
        let (_, b) = artifact.bind(512, 4, &CompileOptions::default()).unwrap();
        assert_eq!(format!("{a:?}"), format!("{b:?}"));
    }
}
