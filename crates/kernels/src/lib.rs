//! # hpf-kernels — the NPAC HPF/Fortran 90D benchmark suite (Table 1)
//!
//! Reproductions, in the framework's HPF subset, of the validation
//! application set of §5 (Table 1): Livermore Fortran Kernels 1, 2, 3, 9,
//! 14 and 22; Purdue Benchmarking Set problems 1–4; the π quadrature; the
//! Newtonian N-body simulation; the parallel stock-option pricing model;
//! and the Jacobi Laplace solver in its three distributions.
//!
//! Each kernel is a source *generator*: `source(n, procs)` returns HPF text
//! with the requested problem size and PROCESSORS arrangement, exactly the
//! knobs the paper's experiments sweep (§5.1: problem sizes 128–4096 on
//! 1–8 nodes, etc.).

pub mod compiled;
pub mod suite;

pub use compiled::{CompiledKernel, KernelBindError};
pub use suite::{all_kernels, kernel_by_name, ooc_kernels, Kernel, KernelKind, LaplaceDist};
