//! The benchmark kernels as HPF/Fortran 90D source generators.

/// Laplace-solver distribution variants (§5.2.1, Figure 3).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LaplaceDist {
    /// `(BLOCK, BLOCK)` on a 2-D processor grid.
    BlockBlock,
    /// `(BLOCK, *)` — rows in blocks.
    BlockStar,
    /// `(*, BLOCK)` — columns in blocks.
    StarBlock,
}

impl LaplaceDist {
    pub fn label(self) -> &'static str {
        match self {
            LaplaceDist::BlockBlock => "(Blk,Blk)",
            LaplaceDist::BlockStar => "(Blk,*)",
            LaplaceDist::StarBlock => "(*,Blk)",
        }
    }
}

/// Which benchmark this is (drives per-kernel defaults).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KernelKind {
    Lfk1,
    Lfk2,
    Lfk3,
    Lfk9,
    Lfk14,
    Lfk22,
    Pbs1,
    Pbs2,
    Pbs3,
    Pbs4,
    Pi,
    NBody,
    Financial,
    Laplace(LaplaceDist),
    /// Out-of-core Jacobi Laplace: the grid lives on the striped file
    /// system, is READ in before the sweep, CHECKPOINTed every iteration
    /// and WRITTEN back at the end (ViPIOS-style two-phase access).
    OocLaplace,
    /// Out-of-core N-body: body positions/masses are READ from the I/O
    /// servers, forces CHECKPOINTed per systolic step and WRITTEN back.
    OocNBody,
}

/// One benchmark kernel.
#[derive(Debug, Clone)]
pub struct Kernel {
    pub kind: KernelKind,
    pub name: &'static str,
    pub description: &'static str,
    /// Whether the paper classifies it as a benchmark kernel (vs a
    /// "real-life" application) — kernels are "specifically coded to task
    /// the compiler" and show the larger errors in Table 2.
    pub is_kernel: bool,
    /// Problem-size sweep used in Table 2 (min, max; swept by doubling).
    pub size_range: (usize, usize),
}

impl Kernel {
    /// Generate HPF source for problem size `n` on `procs` processors.
    pub fn source(&self, n: usize, procs: usize) -> String {
        source_for(self.kind, n, procs)
    }

    /// The exact processor-grid extents [`source`](Self::source) bakes into
    /// its PROCESSORS directive for `procs` processors. A compile-once
    /// artifact re-binding the machine-size critical variable must pin this
    /// shape (via `CompileOptions::grid_extents`) so its partitioning
    /// matches regenerated source exactly.
    pub fn grid_extents(&self, procs: usize) -> Vec<i64> {
        match self.kind {
            KernelKind::Laplace(LaplaceDist::BlockBlock) => {
                let p1 = near_square_factor(procs);
                vec![p1 as i64, (procs / p1) as i64]
            }
            _ => vec![procs as i64],
        }
    }

    /// The paper's sweep sizes (doubling within the range).
    pub fn sweep_sizes(&self) -> Vec<usize> {
        let (lo, hi) = self.size_range;
        let mut v = Vec::new();
        let mut s = lo;
        while s <= hi {
            v.push(s);
            s *= 2;
        }
        v
    }
}

/// All kernels in Table 1 order (Laplace expands to its three variants).
pub fn all_kernels() -> Vec<Kernel> {
    use KernelKind::*;
    vec![
        Kernel {
            kind: Lfk1,
            name: "LFK 1",
            description: "Hydro Fragment",
            is_kernel: true,
            size_range: (128, 4096),
        },
        Kernel {
            kind: Lfk2,
            name: "LFK 2",
            description: "ICCG Excerpt (Incomplete Cholesky; Conj. Grad.)",
            is_kernel: true,
            size_range: (128, 4096),
        },
        Kernel {
            kind: Lfk3,
            name: "LFK 3",
            description: "Inner Product",
            is_kernel: true,
            size_range: (128, 4096),
        },
        Kernel {
            kind: Lfk9,
            name: "LFK 9",
            description: "Integrate Predictors",
            is_kernel: true,
            size_range: (128, 4096),
        },
        Kernel {
            kind: Lfk14,
            name: "LFK 14",
            description: "1-D PIC (Particle In Cell)",
            is_kernel: true,
            size_range: (128, 4096),
        },
        Kernel {
            kind: Lfk22,
            name: "LFK 22",
            description: "Planckian Distribution",
            is_kernel: true,
            size_range: (128, 4096),
        },
        Kernel {
            kind: Pbs1,
            name: "PBS 1",
            description: "Trapezoidal rule estimate of an integral of f(x)",
            is_kernel: true,
            size_range: (128, 4096),
        },
        Kernel {
            kind: Pbs2,
            name: "PBS 2",
            description: "Compute e = sum of products (1 + 0.5^|i-j| + 0.001)",
            is_kernel: true,
            size_range: (256, 65536),
        },
        Kernel {
            kind: Pbs3,
            name: "PBS 3",
            description: "Compute S = sum_i prod_j a_ij",
            is_kernel: true,
            size_range: (256, 65536),
        },
        Kernel {
            kind: Pbs4,
            name: "PBS 4",
            description: "Compute R = sum_i 1/x_i",
            is_kernel: true,
            size_range: (128, 4096),
        },
        Kernel {
            kind: Pi,
            name: "PI",
            description: "Approximation of pi by n-point quadrature",
            is_kernel: false,
            size_range: (128, 4096),
        },
        Kernel {
            kind: NBody,
            name: "N-Body",
            description: "Newtonian gravitational n-body simulation",
            is_kernel: false,
            size_range: (16, 4096),
        },
        Kernel {
            kind: Financial,
            name: "Financial",
            description: "Parallel stock option pricing model",
            is_kernel: false,
            size_range: (32, 512),
        },
        Kernel {
            kind: Laplace(LaplaceDist::BlockBlock),
            name: "Laplace (Blk-Blk)",
            description: "Laplace solver based on Jacobi iterations",
            is_kernel: false,
            size_range: (16, 256),
        },
        Kernel {
            kind: Laplace(LaplaceDist::BlockStar),
            name: "Laplace (Blk-X)",
            description: "Laplace solver based on Jacobi iterations",
            is_kernel: false,
            size_range: (16, 256),
        },
        Kernel {
            kind: Laplace(LaplaceDist::StarBlock),
            name: "Laplace (X-Blk)",
            description: "Laplace solver based on Jacobi iterations",
            is_kernel: false,
            size_range: (16, 256),
        },
    ]
}

/// The out-of-core kernel variants (ISSUE 10): disk-resident working sets
/// with explicit `READ`/`WRITE`/`CHECKPOINT` phases. Kept separate from
/// [`all_kernels`] so Table 1/2 stay at the paper's sixteen rows.
pub fn ooc_kernels() -> Vec<Kernel> {
    use KernelKind::*;
    vec![
        Kernel {
            kind: OocLaplace,
            name: "Laplace OOC",
            description: "Out-of-core Jacobi Laplace (striped read/checkpoint/write)",
            is_kernel: false,
            size_range: (16, 256),
        },
        Kernel {
            kind: OocNBody,
            name: "N-Body OOC",
            description: "Out-of-core N-body (striped read, per-step checkpoint)",
            is_kernel: false,
            size_range: (128, 2048),
        },
    ]
}

/// Look a kernel up by its Table-1 name (or an out-of-core variant's name).
pub fn kernel_by_name(name: &str) -> Option<Kernel> {
    all_kernels()
        .into_iter()
        .chain(ooc_kernels())
        .find(|k| k.name.eq_ignore_ascii_case(name))
}

/// 1-D PROCESSORS / TEMPLATE / ALIGN / DISTRIBUTE boilerplate.
fn map1d(arrays: &[&str], procs: usize) -> String {
    let mut s = format!("!HPF$ PROCESSORS P({procs})\n!HPF$ TEMPLATE TPL(N)\n");
    for a in arrays {
        s.push_str(&format!("!HPF$ ALIGN {a}(I) WITH TPL(I)\n"));
    }
    s.push_str("!HPF$ DISTRIBUTE TPL(BLOCK) ONTO P\n");
    s
}

fn source_for(kind: KernelKind, n: usize, procs: usize) -> String {
    match kind {
        KernelKind::Lfk1 => format!(
            "PROGRAM LFK1
INTEGER, PARAMETER :: N = {n}
REAL X(N), Y(N), Z(N)
REAL Q, R, T
{map}
Y = 0.5
Z = 1.5
Q = 0.05
R = 0.02
T = 0.01
FORALL (K = 1:N-11) X(K) = Q + Y(K) * (R * Z(K+10) + T * Z(K+11))
END
",
            map = map1d(&["X", "Y", "Z"], procs)
        ),
        KernelKind::Lfk2 => format!(
            // ICCG excerpt: log-depth recursive halving with strided,
            // offset element accesses — deliberately compiler-hostile.
            "PROGRAM LFK2
INTEGER, PARAMETER :: N = {n}
INTEGER, PARAMETER :: N2 = N + N
REAL X(N2), V(N2)
INTEGER II, IP, IPO
!HPF$ PROCESSORS P({procs})
!HPF$ TEMPLATE TPL(N2)
!HPF$ ALIGN X(I) WITH TPL(I)
!HPF$ ALIGN V(I) WITH TPL(I)
!HPF$ DISTRIBUTE TPL(BLOCK) ONTO P
X = 1.0
V = 0.25
II = N
IP = 0
DO WHILE (II > 1)
  IPO = IP
  IP = IP + II
  II = II / 2
  FORALL (K = 1:II) X(IP+K) = X(IPO+2*K) - V(IPO+2*K-1)*X(IPO+2*K-1) - V(IPO+2*K)*X(IPO+2*K)
END DO
END
"
        ),
        KernelKind::Lfk3 => format!(
            "PROGRAM LFK3
INTEGER, PARAMETER :: N = {n}
REAL X(N), Z(N), Q
{map}
X = 0.25
Z = 2.0
Q = DOT_PRODUCT(Z, X)
END
",
            map = map1d(&["X", "Z"], procs)
        ),
        KernelKind::Lfk9 => format!(
            // Integrate predictors: wide multi-operand recurrence over the
            // columns of a 2-D array distributed in its second dimension.
            "PROGRAM LFK9
INTEGER, PARAMETER :: N = {n}
REAL PX(13, N)
REAL DM22, DM23, DM24, DM25, DM26, DM27, DM28, C0
!HPF$ PROCESSORS P({procs})
!HPF$ TEMPLATE TPL(N)
!HPF$ ALIGN PX(*,I) WITH TPL(I)
!HPF$ DISTRIBUTE TPL(BLOCK) ONTO P
PX = 1.0
DM22 = 2.0E-2
DM23 = 3.0E-2
DM24 = 4.0E-2
DM25 = 5.0E-2
DM26 = 6.0E-2
DM27 = 7.0E-2
DM28 = 8.0E-2
C0 = 0.5
FORALL (I = 1:N) PX(1,I) = DM28*PX(13,I) + DM27*PX(12,I) + DM26*PX(11,I) + &
  DM25*PX(10,I) + DM24*PX(9,I) + DM23*PX(8,I) + DM22*PX(7,I) + &
  C0*(PX(5,I) + PX(6,I)) + PX(3,I)
END
"
        ),
        KernelKind::Lfk14 => format!(
            // 1-D particle-in-cell: indirect gather through the cell index.
            "PROGRAM LFK14
INTEGER, PARAMETER :: N = {n}
REAL VX(N), XX(N), EX(N), GRD(N)
INTEGER IX(N)
{map}
XX = 0.5
EX = 0.01
GRD = 1.0
FORALL (K = 1:N) GRD(K) = 1.0 + MOD(K * 7, N) / 2
FORALL (K = 1:N) IX(K) = INT(GRD(K))
FORALL (K = 1:N) VX(K) = VX(K) + EX(IX(K)) * 0.5
FORALL (K = 1:N) XX(K) = XX(K) + VX(K) * 0.01
END
",
            map = map1d(&["VX", "XX", "EX", "GRD", "IX"], procs)
        ),
        KernelKind::Lfk22 => format!(
            // Planckian distribution with the overflow-guard mask.
            "PROGRAM LFK22
INTEGER, PARAMETER :: N = {n}
REAL U(N), V(N), W(N), X(N), Y(N)
{map}
FORALL (K = 1:N) U(K) = 0.5 + MOD(K, 10) / 10.0
V = 2.0
X = 1.5
FORALL (K = 1:N, U(K)/V(K) .LE. 20.0) Y(K) = U(K) / V(K)
FORALL (K = 1:N) W(K) = X(K) / (EXP(Y(K)) - 1.0)
END
",
            map = map1d(&["U", "V", "W", "X", "Y"], procs)
        ),
        KernelKind::Pbs1 => format!(
            // Trapezoidal rule for ∫ f, f(x) = exp(-x²)-flavoured kernel.
            "PROGRAM PBS1
INTEGER, PARAMETER :: N = {n}
REAL F(N), H, S
{map_f}
H = 1.0 / N
FORALL (I = 1:N) F(I) = EXP(-((I - 0.5) * (1.0 / N)) ** 2)
S = SUM(F)
S = S * H
END
",
            map_f = map1d(&["F"], procs)
        ),
        KernelKind::Pbs2 => format!(
            // e = Σ_i Π_j (1 + 0.5^(|i-j|) + 0.001), j = 1..M fixed small.
            "PROGRAM PBS2
INTEGER, PARAMETER :: N = {n}
INTEGER, PARAMETER :: M = 8
REAL ROW(N), ACC(N), E
INTEGER J
{map}
ACC = 1.0
DO J = 1, M
  FORALL (I = 1:N) ROW(I) = 1.0 + 0.5 ** ABS(I - J) + 0.001
  FORALL (I = 1:N) ACC(I) = ACC(I) * ROW(I)
END DO
E = SUM(ACC)
END
",
            map = map1d(&["ROW", "ACC"], procs)
        ),
        KernelKind::Pbs3 => format!(
            "PROGRAM PBS3
INTEGER, PARAMETER :: N = {n}
INTEGER, PARAMETER :: M = 8
REAL A(M, N), R(N), S
!HPF$ PROCESSORS P({procs})
!HPF$ TEMPLATE TPL(N)
!HPF$ ALIGN A(*,I) WITH TPL(I)
!HPF$ ALIGN R(I) WITH TPL(I)
!HPF$ DISTRIBUTE TPL(BLOCK) ONTO P
INTEGER J
A = 1.001
R = 1.0
DO J = 1, M
  FORALL (I = 1:N) R(I) = R(I) * A(J, I)
END DO
S = SUM(R)
END
"
        ),
        KernelKind::Pbs4 => format!(
            "PROGRAM PBS4
INTEGER, PARAMETER :: N = {n}
REAL X(N), T(N), R
{map}
FORALL (I = 1:N) X(I) = 1.0 + MOD(I, 97) / 97.0
FORALL (I = 1:N) T(I) = 1.0 / X(I)
R = SUM(T)
END
",
            map = map1d(&["X", "T"], procs)
        ),
        KernelKind::Pi => format!(
            "PROGRAM PI
INTEGER, PARAMETER :: N = {n}
REAL F(N), H, PIE
{map}
H = 1.0 / N
FORALL (I = 1:N) F(I) = 4.0 / (1.0 + ((I - 0.5) * (1.0 / N)) ** 2)
PIE = SUM(F) * H
END
",
            map = map1d(&["F"], procs)
        ),
        KernelKind::NBody => format!(
            // Systolic (rotating-copy) O(N²) gravitational accumulation:
            // each step circularly shifts the travelling copies, every node
            // accumulates partial forces on its local bodies.
            "PROGRAM NBODY
INTEGER, PARAMETER :: N = {n}
REAL X(N), M(N), XT(N), MT(N), F(N)
REAL G, EPS
INTEGER K
{map}
G = 6.67E-2
EPS = 1.0E-3
FORALL (I = 1:N) X(I) = I * 1.0
M = 1.0
XT = X
MT = M
F = 0.0
DO K = 1, N - 1
  XT = CSHIFT(XT, 1)
  MT = CSHIFT(MT, 1)
  FORALL (I = 1:N) F(I) = F(I) + G * M(I) * MT(I) / ((X(I) - XT(I)) ** 2 + EPS)
END DO
END
",
            map = map1d(&["X", "M", "XT", "MT", "F"], procs)
        ),
        KernelKind::Financial => format!(
            // Binomial-lattice option pricing. Phase 1 builds the price
            // lattice by backward induction (shift per step); Phase 2
            // computes the call prices with no communication (Figure 6).
            "PROGRAM FINANCE
INTEGER, PARAMETER :: N = {n}
INTEGER, PARAMETER :: STEPS = 64
REAL S(N), V(N), C(N)
REAL UP, DISC, PU, STRIKE
INTEGER K
{map}
UP = 1.02
DISC = 0.999
PU = 0.5
STRIKE = 1.1
FORALL (I = 1:N) S(I) = UP ** MOD(I, 16)
V = S
DO K = 1, STEPS
  FORALL (I = 1:N-1) V(I) = MAX(DISC * (PU * V(I+1) + (1.0 - PU) * V(I)), S(I) * EXP(-0.002 * K) - STRIKE)
END DO
FORALL (I = 1:N) C(I) = MAX(V(I) - STRIKE, 0.0) * DISC
END
",
            map = map1d(&["S", "V", "C"], procs)
        ),
        KernelKind::Laplace(dist) => {
            let (grid, fmt) = match dist {
                LaplaceDist::BlockBlock => {
                    // 2-D grid: factor procs into two near-equal powers.
                    let p1 = near_square_factor(procs);
                    let p2 = procs / p1;
                    (format!("P({p1},{p2})"), "(BLOCK,BLOCK)")
                }
                LaplaceDist::BlockStar => (format!("P({procs})"), "(BLOCK,*)"),
                LaplaceDist::StarBlock => (format!("P({procs})"), "(*,BLOCK)"),
            };
            format!(
                "PROGRAM LAPLACE
INTEGER, PARAMETER :: N = {n}
REAL U(N,N), UNEW(N,N)
INTEGER IT
!HPF$ PROCESSORS {grid}
!HPF$ TEMPLATE TPL(N,N)
!HPF$ ALIGN U(I,J) WITH TPL(I,J)
!HPF$ ALIGN UNEW(I,J) WITH TPL(I,J)
!HPF$ DISTRIBUTE TPL{fmt} ONTO P
U = 0.0
U(1:N, 1) = 100.0
DO IT = 1, 10
  FORALL (I = 2:N-1, J = 2:N-1) UNEW(I,J) = 0.25 * (U(I-1,J) + U(I+1,J) + U(I,J-1) + U(I,J+1))
  U(2:N-1, 2:N-1) = UNEW(2:N-1, 2:N-1)
END DO
END
"
            )
        }
        KernelKind::OocLaplace => format!(
            // Out-of-core Jacobi: the grid is disk-resident. READ stages it
            // in through the I/O servers, each sweep iteration commits a
            // CHECKPOINT (restart point for the FaultPlan composition), and
            // the converged grid is WRITTEN back. The explicit `U = 0.0`
            // keeps functional evaluation deterministic — READ is a
            // data-movement phase, not a value source, in the evaluator.
            "PROGRAM LAPLACEOOC
INTEGER, PARAMETER :: N = {n}
REAL U(N,N), UNEW(N,N)
INTEGER IT
!HPF$ PROCESSORS P({procs})
!HPF$ TEMPLATE TPL(N,N)
!HPF$ ALIGN U(I,J) WITH TPL(I,J)
!HPF$ ALIGN UNEW(I,J) WITH TPL(I,J)
!HPF$ DISTRIBUTE TPL(BLOCK,*) ONTO P
U = 0.0
READ(U)
U(1:N, 1) = 100.0
DO IT = 1, 10
  FORALL (I = 2:N-1, J = 2:N-1) UNEW(I,J) = 0.25 * (U(I-1,J) + U(I+1,J) + U(I,J-1) + U(I,J+1))
  U(2:N-1, 2:N-1) = UNEW(2:N-1, 2:N-1)
  CHECKPOINT(U, UNEW)
END DO
WRITE(UNEW)
END
"
        ),
        KernelKind::OocNBody => format!(
            // Out-of-core systolic N-body: positions and masses stream in
            // from the striped servers, the accumulated forces are
            // checkpointed after every rotation step and written back.
            "PROGRAM NBODYOOC
INTEGER, PARAMETER :: N = {n}
REAL X(N), M(N), XT(N), MT(N), F(N)
REAL G, EPS
INTEGER K
{map}
G = 6.67E-2
EPS = 1.0E-3
FORALL (I = 1:N) X(I) = I * 1.0
M = 1.0
READ(X, M)
XT = X
MT = M
F = 0.0
DO K = 1, N - 1
  XT = CSHIFT(XT, 1)
  MT = CSHIFT(MT, 1)
  FORALL (I = 1:N) F(I) = F(I) + G * M(I) * MT(I) / ((X(I) - XT(I)) ** 2 + EPS)
  CHECKPOINT(F)
END DO
WRITE(F)
END
",
            map = map1d(&["X", "M", "XT", "MT", "F"], procs)
        ),
    }
}

/// Largest power-of-two factor ≤ √p (grid shape for (BLOCK,BLOCK)).
fn near_square_factor(p: usize) -> usize {
    let mut f = 1;
    while f * 2 * f * 2 <= p * 2 && p.is_multiple_of(f * 2) && f * 2 <= p / (f * 2) * 2 {
        // keep f the smaller dimension: f*2 must still divide p and not
        // exceed the complementary factor
        if p.is_multiple_of(f * 2) && f * 2 <= p / (f * 2) {
            f *= 2;
        } else {
            break;
        }
    }
    f.max(1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpf_compiler::{compile, CompileOptions};
    use hpf_lang::{analyze, parse_program};
    use std::collections::BTreeMap;

    #[test]
    fn table1_has_sixteen_rows() {
        // 13 distinct applications, Laplace in 3 variants = 16 rows as in
        // Table 2 of the paper.
        assert_eq!(all_kernels().len(), 16);
    }

    #[test]
    fn every_kernel_parses_analyzes_compiles() {
        for k in all_kernels() {
            for &procs in &[1usize, 2, 4, 8] {
                let n = k.size_range.0.max(32);
                let src = k.source(n, procs);
                let p =
                    parse_program(&src).unwrap_or_else(|e| panic!("{} parse: {e}\n{src}", k.name));
                let a = analyze(&p, &BTreeMap::new())
                    .unwrap_or_else(|e| panic!("{} sema: {e}", k.name));
                compile(
                    &a,
                    &CompileOptions {
                        nodes: procs,
                        ..Default::default()
                    },
                )
                .unwrap_or_else(|e| panic!("{} compile: {e}", k.name));
            }
        }
    }

    #[test]
    fn every_kernel_evaluates_functionally() {
        for k in all_kernels() {
            let n = 32.max(k.size_range.0.min(64));
            let src = k.source(n, 4);
            let p = parse_program(&src).unwrap();
            let a = analyze(&p, &BTreeMap::new()).unwrap();
            hpf_eval::run(&a).unwrap_or_else(|e| panic!("{} eval: {e}", k.name));
        }
    }

    #[test]
    fn pi_kernel_computes_pi() {
        let k = kernel_by_name("PI").unwrap();
        let src = k.source(1024, 1);
        let p = parse_program(&src).unwrap();
        let a = analyze(&p, &BTreeMap::new()).unwrap();
        let out = hpf_eval::run(&a).unwrap();
        let pie = out.scalars.get("PIE").unwrap().as_f64().unwrap();
        assert!((pie - std::f64::consts::PI).abs() < 1e-3, "pi = {pie}");
    }

    #[test]
    fn lfk3_inner_product_value() {
        let k = kernel_by_name("LFK 3").unwrap();
        let src = k.source(128, 1);
        let p = parse_program(&src).unwrap();
        let a = analyze(&p, &BTreeMap::new()).unwrap();
        let out = hpf_eval::run(&a).unwrap();
        let q = out.scalars.get("Q").unwrap().as_f64().unwrap();
        assert!((q - 128.0 * 0.5).abs() < 1e-6, "q = {q}");
    }

    #[test]
    fn pbs4_harmonic_sum() {
        let k = kernel_by_name("PBS 4").unwrap();
        let src = k.source(128, 1);
        let p = parse_program(&src).unwrap();
        let a = analyze(&p, &BTreeMap::new()).unwrap();
        let out = hpf_eval::run(&a).unwrap();
        let r = out.scalars.get("R").unwrap().as_f64().unwrap();
        // all x in (1, 2): R between N/2 and N
        assert!(r > 64.0 && r < 128.0, "R = {r}");
    }

    #[test]
    fn laplace_variants_differ_only_in_mapping() {
        let b = kernel_by_name("Laplace (Blk-X)").unwrap().source(64, 4);
        let s = kernel_by_name("Laplace (X-Blk)").unwrap().source(64, 4);
        assert!(b.contains("(BLOCK,*)"));
        assert!(s.contains("(*,BLOCK)"));
        let strip = |t: &str| {
            t.lines()
                .filter(|l| !l.starts_with("!HPF$"))
                .collect::<Vec<_>>()
                .join("\n")
        };
        assert_eq!(strip(&b), strip(&s));
    }

    #[test]
    fn grid_extents_match_generated_source() {
        // The compile-once contract: the pinned grid shape must be exactly
        // what the source generator would have baked into its PROCESSORS
        // directive, for every kernel and machine size.
        for k in all_kernels() {
            for &procs in &[1usize, 2, 4, 8, 16] {
                let src = k.source(k.size_range.0.max(32), procs);
                let p = parse_program(&src).unwrap();
                let a = analyze(&p, &BTreeMap::new()).unwrap();
                let spmd = compile(
                    &a,
                    &CompileOptions {
                        nodes: procs,
                        ..Default::default()
                    },
                )
                .unwrap();
                assert_eq!(
                    spmd.grid.extents,
                    k.grid_extents(procs),
                    "{} p={procs}",
                    k.name
                );
            }
        }
    }

    #[test]
    fn ooc_kernels_compile_with_io_phases() {
        for k in ooc_kernels() {
            for &procs in &[1usize, 2, 4, 8] {
                let n = k.size_range.0.max(32);
                let src = k.source(n, procs);
                let p =
                    parse_program(&src).unwrap_or_else(|e| panic!("{} parse: {e}\n{src}", k.name));
                let a = analyze(&p, &BTreeMap::new())
                    .unwrap_or_else(|e| panic!("{} sema: {e}", k.name));
                let spmd = compile(
                    &a,
                    &CompileOptions {
                        nodes: procs,
                        ..Default::default()
                    },
                )
                .unwrap_or_else(|e| panic!("{} compile: {e}", k.name));
                assert!(
                    spmd.outline().contains("Io "),
                    "{} p={procs}: no Io phase in outline",
                    k.name
                );
            }
        }
    }

    #[test]
    fn ooc_kernels_evaluate_functionally() {
        // READ/WRITE/CHECKPOINT are data-movement phases; the functional
        // results must match the in-core program semantics.
        for k in ooc_kernels() {
            let n = 32.max(k.size_range.0.min(64));
            let src = k.source(n, 4);
            let p = parse_program(&src).unwrap();
            let a = analyze(&p, &BTreeMap::new()).unwrap();
            hpf_eval::run(&a).unwrap_or_else(|e| panic!("{} eval: {e}", k.name));
        }
    }

    #[test]
    fn kernel_by_name_finds_ooc_variants() {
        assert!(kernel_by_name("Laplace OOC").is_some());
        assert!(kernel_by_name("n-body ooc").is_some());
        // Table 1 stays at sixteen rows; OOC variants live alongside.
        assert_eq!(ooc_kernels().len(), 2);
    }

    #[test]
    fn near_square_factor_shapes() {
        assert_eq!(near_square_factor(4), 2);
        assert_eq!(near_square_factor(8), 2);
        assert_eq!(near_square_factor(16), 4);
        assert_eq!(near_square_factor(1), 1);
        assert_eq!(near_square_factor(2), 1);
    }

    #[test]
    fn sweep_sizes_double() {
        let k = kernel_by_name("LFK 1").unwrap();
        assert_eq!(k.sweep_sizes(), vec![128, 256, 512, 1024, 2048, 4096]);
    }

    #[test]
    fn nbody_kernel_is_comm_heavy_at_small_n() {
        let k = kernel_by_name("N-Body").unwrap();
        let src = k.source(64, 8);
        let p = parse_program(&src).unwrap();
        let a = analyze(&p, &BTreeMap::new()).unwrap();
        let spmd = compile(
            &a,
            &CompileOptions {
                nodes: 8,
                ..Default::default()
            },
        )
        .unwrap();
        assert!(spmd.comm_phase_count() > 0);
    }
}
