//! Measured calibration of the abstracted machine (§4.4).
//!
//! The paper parameterizes the communication component and the parallel
//! intrinsic library with *benchmarking runs* on the iPSC/860, and the
//! processing component with measured timings — the abstraction's numbers
//! are fitted to the machine, not derived ab initio. This module holds the
//! fitted parameters; the `ipsc-sim` crate provides the benchmarking-run
//! driver (`ipsc_sim::calibrate`) that fills them in against the simulated
//! machine, mirroring how the authors calibrated against the physical one.

use crate::collectives::CollectiveOp;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Fitted machine parameters from characterization runs.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Calibration {
    /// Multiplier applied to computed operation times: the ratio between
    /// measured loop timings and instruction-count estimates.
    pub compute_scale: f64,
    /// Per-(collective, processor-count) piecewise-linear model fitted from
    /// benchmarking runs — the NX library shows distinct short- and
    /// long-message regimes, so one line per regime.
    pub comm: BTreeMap<(u8, u8), PiecewiseCost>,
    /// Fitted striped parallel-I/O model: per (log₂ server-count,
    /// log₂ participant-count) piecewise `α + β·m` over total phase bytes,
    /// fitted against the DES I/O subsystem the same way `comm` is fitted
    /// against its network. Empty before an I/O calibration pass.
    #[serde(default)]
    pub io: BTreeMap<(u8, u8), PiecewiseCost>,
}

/// Two-regime `α + β·m` model with a byte boundary between regimes.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct PiecewiseCost {
    pub boundary: u64,
    pub small: LinearCost,
    pub large: LinearCost,
}

impl PiecewiseCost {
    pub fn time(&self, bytes: u64) -> f64 {
        if bytes <= self.boundary {
            self.small.time(bytes)
        } else {
            self.large.time(bytes)
        }
    }

    /// Fit each regime from the samples on its side of `boundary`
    /// (boundary samples inform both fits for continuity).
    pub fn fit(samples: &[(u64, f64)], boundary: u64) -> PiecewiseCost {
        let small: Vec<(u64, f64)> = samples
            .iter()
            .copied()
            .filter(|(b, _)| *b <= boundary)
            .collect();
        let large: Vec<(u64, f64)> = samples
            .iter()
            .copied()
            .filter(|(b, _)| *b >= boundary)
            .collect();
        let fit_or = |v: &[(u64, f64)]| {
            if v.is_empty() {
                LinearCost::fit(samples)
            } else {
                LinearCost::fit(v)
            }
        };
        PiecewiseCost {
            boundary,
            small: fit_or(&small),
            large: fit_or(&large),
        }
    }
}

/// A fitted `α + β·m` cost model.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct LinearCost {
    pub alpha_s: f64,
    pub beta_s_per_byte: f64,
}

impl LinearCost {
    pub fn time(&self, bytes: u64) -> f64 {
        self.alpha_s + self.beta_s_per_byte * bytes as f64
    }

    /// Least-squares fit of (bytes, seconds) samples.
    pub fn fit(samples: &[(u64, f64)]) -> LinearCost {
        let n = samples.len().max(1) as f64;
        let sx: f64 = samples.iter().map(|(b, _)| *b as f64).sum();
        let sy: f64 = samples.iter().map(|(_, t)| *t).sum();
        let sxx: f64 = samples.iter().map(|(b, _)| (*b as f64) * (*b as f64)).sum();
        let sxy: f64 = samples.iter().map(|(b, t)| (*b as f64) * t).sum();
        let denom = n * sxx - sx * sx;
        if denom.abs() < 1e-30 {
            return LinearCost {
                alpha_s: sy / n,
                beta_s_per_byte: 0.0,
            };
        }
        let beta = (n * sxy - sx * sy) / denom;
        let alpha = (sy - beta * sx) / n;
        LinearCost {
            alpha_s: alpha.max(0.0),
            beta_s_per_byte: beta.max(0.0),
        }
    }
}

impl Calibration {
    pub fn key(op: CollectiveOp, p: usize) -> (u8, u8) {
        (op as u8, p.next_power_of_two().trailing_zeros() as u8)
    }

    /// Fitted collective time, if characterized for this (op, p).
    pub fn collective_time(&self, op: CollectiveOp, p: usize, bytes: u64) -> Option<f64> {
        self.comm.get(&Self::key(op, p)).map(|pc| pc.time(bytes))
    }

    pub fn io_key(servers: usize, participants: usize) -> (u8, u8) {
        (
            servers.next_power_of_two().trailing_zeros() as u8,
            participants.next_power_of_two().trailing_zeros() as u8,
        )
    }

    /// Fitted striped-I/O phase time for `total_bytes` over `servers`
    /// servers and `participants` compute nodes, if characterized.
    pub fn io_time(&self, servers: usize, participants: usize, total_bytes: u64) -> Option<f64> {
        self.io
            .get(&Self::io_key(servers, participants))
            .map(|pc| pc.time(total_bytes))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_fit_recovers_model() {
        let samples: Vec<(u64, f64)> = [4u64, 64, 1024, 8192]
            .iter()
            .map(|&b| (b, 1e-4 + 2e-7 * b as f64))
            .collect();
        let lc = LinearCost::fit(&samples);
        assert!((lc.alpha_s - 1e-4).abs() < 1e-9, "alpha {}", lc.alpha_s);
        assert!((lc.beta_s_per_byte - 2e-7).abs() < 1e-12);
        assert!((lc.time(2048) - (1e-4 + 2e-7 * 2048.0)).abs() < 1e-9);
    }

    #[test]
    fn fit_handles_degenerate_input() {
        let lc = LinearCost::fit(&[(64, 3.0)]);
        assert!(lc.time(64) > 0.0);
        let lc = LinearCost::fit(&[]);
        assert_eq!(lc.time(0), 0.0);
    }

    #[test]
    fn piecewise_fit_keeps_regimes_separate() {
        // small regime: 100µs flat; large regime: 150µs + 0.4µs/B
        let mut samples: Vec<(u64, f64)> = vec![(4, 1e-4), (64, 1.05e-4), (512, 1.1e-4)];
        samples.extend([
            (2048u64, 1.5e-4 + 0.4e-6 * 2048.0),
            (65536, 1.5e-4 + 0.4e-6 * 65536.0),
        ]);
        let pc = PiecewiseCost::fit(&samples, 1024);
        assert!(
            (pc.time(16) - 1e-4).abs() < 2e-5,
            "small regime {}",
            pc.time(16)
        );
        assert!((pc.time(32768) - (1.5e-4 + 0.4e-6 * 32768.0)).abs() < 3e-5);
    }

    #[test]
    fn key_buckets_by_log_p() {
        assert_eq!(
            Calibration::key(CollectiveOp::Shift, 4),
            Calibration::key(CollectiveOp::Shift, 4)
        );
        assert_ne!(
            Calibration::key(CollectiveOp::Shift, 4),
            Calibration::key(CollectiveOp::Shift, 8)
        );
        assert_ne!(
            Calibration::key(CollectiveOp::Shift, 4),
            Calibration::key(CollectiveOp::Reduce, 4)
        );
    }
}
