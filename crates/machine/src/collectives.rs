//! Cost models for the collective-communication library and the HPF
//! parallel-intrinsic library (§4.4): circular shift (`cshift`), shift to
//! temporary (`tshift`), global sum/product, `maxloc`, broadcast, and the
//! gather/scatter pair the compiler inserts around `forall` computation
//! phases.
//!
//! On the real machine these were parameterized by benchmarking runs; here
//! they are closed forms over the C/S component's α–β parameters plus the
//! hypercube's `log₂ p` structure, the standard models for iPSC-class
//! recursive-halving / spanning-tree implementations.

use crate::components::{CommComponent, OpClass, ProcessingComponent};
use crate::topology::Hypercube;
use serde::{Deserialize, Serialize};

/// The collective operations the compiler and intrinsic library can emit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CollectiveOp {
    /// Nearest-neighbor exchange of array boundaries (cshift/tshift,
    /// stencil ghost cells). Each node sends+receives `bytes`.
    Shift,
    /// Reduction to all (global sum/product/max/min) over `log p` stages.
    Reduce,
    /// Reduction returning a location (maxloc/minloc): value+index payload.
    ReduceLoc,
    /// One-to-all broadcast (spanning tree, `log p` stages).
    Broadcast,
    /// All-to-all personalized exchange (used by transpose/redistributions).
    AllToAll,
    /// Unstructured gather of off-processor elements before a computation
    /// phase (Figure 2's first communication level).
    Gather,
    /// Unstructured scatter of computed values after a computation phase
    /// (Figure 2's final communication level).
    Scatter,
    /// Pure synchronization barrier.
    Barrier,
}

/// Cost model for collectives on a hypercube.
#[derive(Debug, Clone)]
pub struct CollectiveModel<'a> {
    pub comm: &'a CommComponent,
    pub proc: &'a ProcessingComponent,
    pub cube: Hypercube,
}

impl<'a> CollectiveModel<'a> {
    /// Time for the collective, where `bytes` is the per-node payload and
    /// `p` the number of participating processors. Includes the software
    /// pack/unpack cost on both sides (the `Seq` AAU of Figure 2 charges
    /// index translation separately; this is the raw library time).
    pub fn time(&self, op: CollectiveOp, p: usize, bytes: u64) -> f64 {
        if p <= 1 {
            // Single node: collectives degenerate to (at most) a local copy.
            return match op {
                CollectiveOp::Shift | CollectiveOp::Gather | CollectiveOp::Scatter => {
                    self.comm.pack_time(bytes)
                }
                _ => 0.0,
            };
        }
        let stages = Hypercube::fitting(p).dim.max(1) as f64;
        let p2p = |b: u64| self.comm.p2p_time(b, 1);
        match op {
            CollectiveOp::Shift => {
                // Simultaneous neighbor exchange; send and receive overlap
                // only partially on the iPSC (half-duplex channels): charge
                // one send + one receive of the boundary payload plus pack.
                2.0 * self.comm.pack_time(bytes) + 2.0 * p2p(bytes)
            }
            CollectiveOp::Reduce => {
                // Recursive halving: log p exchanges of the (scalar) payload
                // plus the combining op at each stage.
                let combine = self.proc.op_time(OpClass::FAdd) * (bytes as f64 / 4.0).max(1.0);
                stages * (p2p(bytes) + combine)
            }
            CollectiveOp::ReduceLoc => {
                // Value + index payload, compare instead of add.
                let payload = bytes + 4;
                let combine = self.proc.op_time(OpClass::Compare) * (bytes as f64 / 4.0).max(1.0);
                stages * (p2p(payload) + combine)
            }
            CollectiveOp::Broadcast => stages * p2p(bytes),
            CollectiveOp::AllToAll => {
                // Pairwise exchange algorithm: p-1 rounds of per-pair payload.
                (p as f64 - 1.0)
                    * (p2p(bytes / p.max(1) as u64) + self.comm.pack_time(bytes / p.max(1) as u64))
            }
            CollectiveOp::Gather | CollectiveOp::Scatter => {
                // Unstructured: pack + exchange with up to log p partners
                // holding the requested elements.
                self.comm.pack_time(bytes) + stages.min(2.0) * p2p(bytes)
            }
            CollectiveOp::Barrier => stages * p2p(0) + p as f64 * self.comm.sync_overhead_s,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ipsc860_comm, ipsc860_node_processing};

    fn model(comm: &CommComponent, proc_: &ProcessingComponent, p: usize) -> f64 {
        // convenience: reduce of one 4-byte scalar
        CollectiveModel {
            comm,
            proc: proc_,
            cube: Hypercube::fitting(p),
        }
        .time(CollectiveOp::Reduce, p, 4)
    }

    #[test]
    fn reduce_scales_logarithmically() {
        let comm = ipsc860_comm();
        let proc_ = ipsc860_node_processing();
        let t2 = model(&comm, &proc_, 2);
        let t4 = model(&comm, &proc_, 4);
        let t8 = model(&comm, &proc_, 8);
        assert!(t4 > t2 && t8 > t4);
        // log growth: t8/t2 ≈ 3, not 4
        assert!((t8 / t2 - 3.0).abs() < 0.5, "t8/t2 = {}", t8 / t2);
    }

    #[test]
    fn single_node_collectives_are_free_or_copy() {
        let comm = ipsc860_comm();
        let proc_ = ipsc860_node_processing();
        let m = CollectiveModel {
            comm: &comm,
            proc: &proc_,
            cube: Hypercube::fitting(1),
        };
        assert_eq!(m.time(CollectiveOp::Reduce, 1, 4), 0.0);
        assert!(m.time(CollectiveOp::Shift, 1, 1024) > 0.0); // local copy
        assert!(m.time(CollectiveOp::Shift, 1, 1024) < m.time(CollectiveOp::Shift, 2, 1024));
    }

    #[test]
    fn shift_grows_with_payload() {
        let comm = ipsc860_comm();
        let proc_ = ipsc860_node_processing();
        let m = CollectiveModel {
            comm: &comm,
            proc: &proc_,
            cube: Hypercube::fitting(8),
        };
        assert!(m.time(CollectiveOp::Shift, 8, 8192) > m.time(CollectiveOp::Shift, 8, 64));
    }

    #[test]
    fn reduceloc_costs_more_than_reduce() {
        let comm = ipsc860_comm();
        let proc_ = ipsc860_node_processing();
        let m = CollectiveModel {
            comm: &comm,
            proc: &proc_,
            cube: Hypercube::fitting(8),
        };
        assert!(m.time(CollectiveOp::ReduceLoc, 8, 4) >= m.time(CollectiveOp::Reduce, 8, 4));
    }

    #[test]
    fn barrier_positive_and_grows() {
        let comm = ipsc860_comm();
        let proc_ = ipsc860_node_processing();
        let m = CollectiveModel {
            comm: &comm,
            proc: &proc_,
            cube: Hypercube::fitting(8),
        };
        assert!(m.time(CollectiveOp::Barrier, 2, 0) > 0.0);
        assert!(m.time(CollectiveOp::Barrier, 8, 0) > m.time(CollectiveOp::Barrier, 2, 0));
    }
}
