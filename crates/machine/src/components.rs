//! SAU components: every System Abstraction Unit is composed of a
//! Processing (P), Memory (M), Communication/Synchronization (C/S) and
//! Input/Output (I/O) component (§3.1), each parameterizing the relevant
//! characteristics of the associated system unit.

use serde::{Deserialize, Serialize};

/// Classes of machine operation the interpretation functions charge for.
///
/// The granularity mirrors what an off-line assembly-count characterization
/// of the i860 distinguishes: pipelined FP add/multiply, the expensive
/// divide/sqrt paths, integer ALU traffic, memory references, and the
/// control overheads of loops, branches and calls.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum OpClass {
    /// Floating-point add/subtract (pipelined adder).
    FAdd,
    /// Floating-point multiply (pipelined multiplier).
    FMul,
    /// Floating-point divide (iterative, unpipelined on i860).
    FDiv,
    /// Square root and transcendentals (library sequences).
    FTranscendental,
    /// Integer ALU operation (add/sub/shift/logic).
    IntOp,
    /// Integer multiply.
    IntMul,
    /// Integer divide.
    IntDiv,
    /// Comparison producing a condition.
    Compare,
    /// Logical op on LOGICALs.
    Logical,
    /// Memory load (charged through the memory component's hit model).
    Load,
    /// Memory store.
    Store,
    /// Per-iteration loop bookkeeping (increment, test, branch).
    LoopIter,
    /// One-time loop setup.
    LoopSetup,
    /// Conditional-branch overhead.
    Branch,
    /// Subroutine call/return linkage.
    Call,
    /// Address/index computation for an array reference.
    Index,
}

/// Processing component (P): clock rate and per-operation cycle costs.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ProcessingComponent {
    /// Core clock in MHz.
    pub clock_mhz: f64,
    /// Cycles per operation class (memory classes are handled by
    /// [`MemoryComponent`]).
    pub fadd_cycles: f64,
    pub fmul_cycles: f64,
    pub fdiv_cycles: f64,
    pub ftrans_cycles: f64,
    pub int_cycles: f64,
    pub imul_cycles: f64,
    pub idiv_cycles: f64,
    pub cmp_cycles: f64,
    pub logical_cycles: f64,
    pub loop_iter_cycles: f64,
    pub loop_setup_cycles: f64,
    pub branch_cycles: f64,
    pub call_cycles: f64,
    pub index_cycles: f64,
}

impl ProcessingComponent {
    /// Seconds per cycle.
    pub fn cycle_time(&self) -> f64 {
        1e-6 / self.clock_mhz
    }

    /// Time in seconds for one operation of the given class.
    /// `Load`/`Store` are *not* answered here — ask the memory component.
    pub fn op_time(&self, op: OpClass) -> f64 {
        let cycles = match op {
            OpClass::FAdd => self.fadd_cycles,
            OpClass::FMul => self.fmul_cycles,
            OpClass::FDiv => self.fdiv_cycles,
            OpClass::FTranscendental => self.ftrans_cycles,
            OpClass::IntOp => self.int_cycles,
            OpClass::IntMul => self.imul_cycles,
            OpClass::IntDiv => self.idiv_cycles,
            OpClass::Compare => self.cmp_cycles,
            OpClass::Logical => self.logical_cycles,
            OpClass::LoopIter => self.loop_iter_cycles,
            OpClass::LoopSetup => self.loop_setup_cycles,
            OpClass::Branch => self.branch_cycles,
            OpClass::Call => self.call_cycles,
            OpClass::Index => self.index_cycles,
            OpClass::Load | OpClass::Store => 0.0,
        };
        cycles * self.cycle_time()
    }

    /// Theoretical peak in MFlop/s assuming one FP op per `fadd_cycles`.
    pub fn peak_mflops(&self) -> f64 {
        self.clock_mhz / self.fadd_cycles
    }
}

/// Memory component (M): hierarchy sizes and a working-set hit-ratio model.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MemoryComponent {
    pub icache_bytes: u64,
    pub dcache_bytes: u64,
    pub main_bytes: u64,
    pub cache_line_bytes: u64,
    /// Cycles for a cache hit.
    pub hit_cycles: f64,
    /// Additional cycles for a miss (line fill from DRAM).
    pub miss_penalty_cycles: f64,
    /// Clock for converting cycles to time (same as processing clock).
    pub clock_mhz: f64,
}

impl MemoryComponent {
    /// Estimated data-cache hit ratio for a loop sweeping a working set of
    /// `ws_bytes` with unit-stride fraction `locality` in `[0,1]`.
    ///
    /// The model is the paper's "models and heuristics … to handle accesses
    /// to the memory hierarchy" (§3.3): a working set within the cache hits
    /// after the first sweep; beyond the cache, unit-stride code still hits
    /// on `1 - line/elem` of references thanks to line reuse.
    pub fn hit_ratio(&self, ws_bytes: u64, elem_bytes: u64, locality: f64) -> f64 {
        let locality = locality.clamp(0.0, 1.0);
        if ws_bytes <= self.dcache_bytes {
            // Near-perfect reuse for unit-stride sweeps; large strides map
            // their lines onto a fraction of the sets of the low-way cache,
            // causing conflict misses even when the footprint fits.
            0.98 - 0.12 * (1.0 - locality)
        } else {
            // Streaming: one miss per line per sweep on the local fraction.
            let per_line = (elem_bytes as f64 / self.cache_line_bytes as f64).min(1.0);
            let stream_hit = 1.0 - per_line;
            // Non-local (strided/indirect) references miss much more often.
            locality * stream_hit + (1.0 - locality) * 0.25
        }
    }

    /// Average memory-access time (seconds) under hit ratio `h`.
    pub fn access_time(&self, h: f64) -> f64 {
        let cycles = self.hit_cycles + (1.0 - h) * self.miss_penalty_cycles;
        cycles * 1e-6 / self.clock_mhz
    }
}

/// Communication/synchronization component (C/S): the α–β point-to-point
/// model measured on the machine, with the short/long message regimes the
/// iPSC/860 NX layer exhibits.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CommComponent {
    /// Startup latency for short messages (≤ `short_threshold`), seconds.
    pub short_latency_s: f64,
    /// Startup latency for long messages, seconds.
    pub long_latency_s: f64,
    /// Short-message cutoff in bytes (100 B on the iPSC/860 NX).
    pub short_threshold: u64,
    /// Inverse bandwidth, seconds per byte.
    pub per_byte_s: f64,
    /// Extra per-hop wormhole/store-and-forward time, seconds.
    pub per_hop_s: f64,
    /// Software cost to pack/unpack one element into a message buffer,
    /// seconds (index translation + copy; the `Seq` AAU of Figure 2).
    pub pack_per_byte_s: f64,
    /// Synchronization (barrier) software overhead per participant, seconds.
    pub sync_overhead_s: f64,
}

impl CommComponent {
    /// Point-to-point transfer time for `bytes` over `hops` links.
    pub fn p2p_time(&self, bytes: u64, hops: u32) -> f64 {
        let startup = if bytes <= self.short_threshold {
            self.short_latency_s
        } else {
            self.long_latency_s
        };
        startup + bytes as f64 * self.per_byte_s + hops.saturating_sub(1) as f64 * self.per_hop_s
    }

    /// Software packing cost for a message of `bytes`.
    pub fn pack_time(&self, bytes: u64) -> f64 {
        bytes as f64 * self.pack_per_byte_s
    }
}

/// I/O component: host (SRM) interaction — program load, cross-compiled
/// executable transfer, and the host↔cube channel — plus the striped
/// parallel-I/O subsystem (ViPIOS-style dedicated I/O server processes with
/// local disks, serving READ/WRITE/CHECKPOINT phases in stripe-sized blocks).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct IoComponent {
    /// Bandwidth of the SRM→cube load channel, bytes/second.
    pub load_bandwidth_bps: f64,
    /// Fixed latency to initiate a program load, seconds.
    pub load_latency_s: f64,
    /// Host filesystem transfer bandwidth (for copying executables in).
    pub transfer_bandwidth_bps: f64,
    /// Default number of dedicated I/O server processes files are striped
    /// across (a compile-time `IoConfig` can override per program).
    pub io_servers: usize,
    /// Stripe unit in bytes: the round-robin distribution granularity of a
    /// file across the I/O servers.
    pub stripe_bytes: u64,
    /// Per-request service latency at one server disk (seek + rotational),
    /// seconds.
    pub disk_latency_s: f64,
    /// Streaming bandwidth of one server disk, bytes/second.
    pub disk_bandwidth_bps: f64,
    /// Software overhead a server spends per striped block (request parsing,
    /// buffer management), seconds.
    pub server_overhead_s: f64,
}

impl IoComponent {
    /// Time to load an executable of `bytes` onto the nodes.
    pub fn load_time(&self, bytes: u64) -> f64 {
        self.load_latency_s + bytes as f64 / self.load_bandwidth_bps
    }

    /// Serialized host↔cube channel time for `bytes` (checkpoint commit
    /// records and other host-side metadata traffic).
    pub fn host_channel_time(&self, bytes: u64) -> f64 {
        bytes as f64 / self.transfer_bandwidth_bps
    }

    /// FIFO disk-queue service time at one server handling `blocks` striped
    /// requests totalling `bytes`.
    pub fn disk_service_time(&self, blocks: u64, bytes: u64) -> f64 {
        blocks as f64 * (self.disk_latency_s + self.server_overhead_s)
            + bytes as f64 / self.disk_bandwidth_bps
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ipsc860_node_processing;

    #[test]
    fn op_times_positive_and_ordered() {
        let p = ipsc860_node_processing();
        assert!(p.op_time(OpClass::FAdd) > 0.0);
        // divide must be much slower than multiply on the i860
        assert!(p.op_time(OpClass::FDiv) > 5.0 * p.op_time(OpClass::FMul));
        assert!(p.op_time(OpClass::FTranscendental) >= p.op_time(OpClass::FDiv));
    }

    #[test]
    fn peak_matches_published_spec() {
        // Node peak: 40 MFlop/s double / 80 single; our single-cycle adder
        // at 40 MHz gives 40 MFlop/s scalar peak, within the published band.
        let p = ipsc860_node_processing();
        let peak = p.peak_mflops();
        assert!((20.0..=80.0).contains(&peak), "peak {peak}");
    }

    #[test]
    fn hit_ratio_degrades_with_working_set() {
        let m = crate::ipsc860_node_memory();
        let small = m.hit_ratio(4 * 1024, 4, 1.0);
        let large = m.hit_ratio(1024 * 1024, 4, 1.0);
        assert!(small > large);
        let strided = m.hit_ratio(1024 * 1024, 4, 0.0);
        assert!(strided < large);
    }

    #[test]
    fn access_time_monotone_in_miss_rate() {
        let m = crate::ipsc860_node_memory();
        assert!(m.access_time(0.5) > m.access_time(0.9));
    }

    #[test]
    fn p2p_short_long_regimes() {
        let c = crate::ipsc860_comm();
        let short = c.p2p_time(64, 1);
        let long = c.p2p_time(4096, 1);
        assert!(long > short);
        // startup dominates short messages
        assert!(short < 2.0 * c.short_latency_s + 64.0 * c.per_byte_s);
        // extra hops cost extra
        assert!(c.p2p_time(64, 3) > c.p2p_time(64, 1));
    }
}
