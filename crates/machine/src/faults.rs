//! Fault plans: deterministic, replayable degradations of the abstracted
//! machine.
//!
//! A [`FaultPlan`] describes *what is wrong* with the machine — slowed
//! nodes, degraded or severed hypercube links, a message-loss probability —
//! together with the NX-layer [`RetryPolicy`] that recovers from transient
//! loss. The same plan is consumed from both sides of the paper's
//! methodology:
//!
//! * the discrete-event simulator (`ipsc-sim`) *injects* the faults into
//!   its network walk (per-message loss draws, timeout/backoff
//!   retransmission, detour routing around severed links), playing the role
//!   of the degraded physical machine, and
//! * the interpretation engine consumes [`MachineModel::degrade`], an
//!   analytic worst-case re-parameterization of the SAU components under
//!   the same plan, playing the role of the predictor.
//!
//! Comparing the two extends the paper's predicted-vs-measured question to
//! degraded operating points. Plans are pure data with a fixed `seed`: the
//! simulator's fault draws are a deterministic function of (plan, config),
//! so every experiment is replayable.

use crate::MachineModel;
use serde::{Deserialize, Serialize};

/// Health of one hypercube link.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum LinkState {
    /// Link operates at `1/factor` of its healthy bandwidth (`factor > 1`).
    Degraded { factor: f64 },
    /// Link is severed; traffic must detour around it.
    Down,
}

/// A fault on the undirected link between `a` and `b`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LinkFault {
    pub a: usize,
    pub b: usize,
    pub state: LinkState,
}

/// A fault on one compute node: it runs `slowdown`× slower than spec
/// (thermal throttling, competing daemon load, a flaky memory bank).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NodeFault {
    pub node: usize,
    pub slowdown: f64,
}

/// Timeout/retransmission discipline for point-to-point sends under loss:
/// a sender that has not been acknowledged within `timeout_s` resends,
/// backing off exponentially, up to `max_retries` resends. After the final
/// attempt the message is delivered anyway (the send is assumed to succeed
/// at the protocol level eventually; the walk must terminate).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RetryPolicy {
    pub timeout_s: f64,
    pub max_retries: u32,
    pub backoff: f64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            timeout_s: 500e-6,
            max_retries: 4,
            backoff: 2.0,
        }
    }
}

impl RetryPolicy {
    /// Expected (transmission count, total timeout wait in seconds) for a
    /// per-attempt loss probability `p`, with delivery forced after the
    /// final attempt. This is the analytic counterpart of the simulator's
    /// per-message retry loop.
    pub fn expectations(&self, p: f64) -> (f64, f64) {
        let p = p.clamp(0.0, 0.999);
        let mut e_tx = 0.0;
        let mut e_wait = 0.0;
        let mut reach = 1.0; // probability this attempt happens
        for k in 0..=self.max_retries {
            e_tx += reach;
            if k < self.max_retries {
                e_wait += reach * p * self.timeout_s * self.backoff.powi(k as i32);
                reach *= p;
            }
        }
        (e_tx, e_wait)
    }
}

/// A complete fault-injection plan. `FaultPlan::none()` is the healthy
/// machine and is guaranteed to leave every consumer on its unfaulted code
/// path (bit-identical results to a build without this module).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultPlan {
    /// Display name for reports.
    pub name: String,
    /// Seed for the simulator's fault draws (loss), independent of the
    /// load-jitter stream so adding faults never perturbs the healthy RNG.
    pub seed: u64,
    pub node_faults: Vec<NodeFault>,
    pub link_faults: Vec<LinkFault>,
    /// Probability that any single point-to-point transmission is lost.
    pub loss_prob: f64,
    pub retry: RetryPolicy,
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan::none()
    }
}

impl FaultPlan {
    /// The healthy machine.
    pub fn none() -> FaultPlan {
        FaultPlan {
            name: "none".into(),
            seed: 0xFA17,
            node_faults: Vec::new(),
            link_faults: Vec::new(),
            loss_prob: 0.0,
            retry: RetryPolicy::default(),
        }
    }

    /// One link running at `1/factor` bandwidth.
    pub fn degraded_link(a: usize, b: usize, factor: f64) -> FaultPlan {
        FaultPlan {
            name: format!("degraded-link {a}-{b} x{factor}"),
            link_faults: vec![LinkFault {
                a,
                b,
                state: LinkState::Degraded { factor },
            }],
            ..FaultPlan::none()
        }
    }

    /// One severed link.
    pub fn link_down(a: usize, b: usize) -> FaultPlan {
        FaultPlan {
            name: format!("link-down {a}-{b}"),
            link_faults: vec![LinkFault {
                a,
                b,
                state: LinkState::Down,
            }],
            ..FaultPlan::none()
        }
    }

    /// One node running `slowdown`× slower.
    pub fn slow_node(node: usize, slowdown: f64) -> FaultPlan {
        FaultPlan {
            name: format!("slow-node {node} x{slowdown}"),
            node_faults: vec![NodeFault { node, slowdown }],
            ..FaultPlan::none()
        }
    }

    /// Uniform message loss with the default retry policy.
    pub fn lossy(loss_prob: f64) -> FaultPlan {
        FaultPlan {
            name: format!("lossy p={loss_prob}"),
            loss_prob,
            ..FaultPlan::none()
        }
    }

    /// True when the plan injects nothing: consumers must take their
    /// original, unfaulted code path (this is what keeps the zero-fault
    /// experiment bit-identical to the baseline tables).
    pub fn is_zero(&self) -> bool {
        self.node_faults.is_empty() && self.link_faults.is_empty() && self.loss_prob <= 0.0
    }

    /// Slowdown factor of `node` (1.0 when healthy). Multiple faults on the
    /// same node compound by taking the worst.
    pub fn slowdown(&self, node: usize) -> f64 {
        self.node_faults
            .iter()
            .filter(|f| f.node == node)
            .map(|f| f.slowdown)
            .fold(1.0, f64::max)
            .max(1.0)
    }

    /// Worst node slowdown anywhere in the plan. Loosely: SPMD phases
    /// synchronize, so the slowest node gates every phase.
    pub fn max_slowdown(&self) -> f64 {
        self.node_faults
            .iter()
            .map(|f| f.slowdown)
            .fold(1.0, f64::max)
            .max(1.0)
    }

    /// State of the undirected link (a, b), if faulted.
    pub fn link_state(&self, a: usize, b: usize) -> Option<LinkState> {
        let key = (a.min(b), a.max(b));
        self.link_faults
            .iter()
            .find(|f| (f.a.min(f.b), f.a.max(f.b)) == key)
            .map(|f| f.state)
    }

    /// True when any link in the plan is severed.
    pub fn any_link_down(&self) -> bool {
        self.link_faults.iter().any(|f| f.state == LinkState::Down)
    }

    /// Whether collectives must insert stage-level recovery barriers
    /// (anything that can force a retransmission mid-stage).
    pub fn needs_recovery(&self) -> bool {
        self.loss_prob > 0.0 || self.any_link_down()
    }

    /// Analytic communication degradation on a `nodes`-node hypercube:
    /// `(latency_scale, wire_scale, extra_s)` such that a healthy transfer
    /// with startup `l` and wire time `w` costs about
    /// `l·latency_scale + w·wire_scale + extra_s` under this plan.
    ///
    /// * expected retransmissions repeat the whole send (startup included)
    ///   and add the expected timeout wait ([`RetryPolicy::expectations`]);
    /// * a degraded link stretches only the traffic crossing it — under
    ///   uniform collective traffic one of the cube's links carries a
    ///   `1/2^dim` share of the wire time, so the factor is weighted by
    ///   that share rather than applied globally;
    /// * a severed link doubles the traffic on its two detour links (the
    ///   same share-weighted surcharge, over two links) and costs two extra
    ///   hops per crossing message;
    /// * anything that can disturb a collective stage (loss, severed links)
    ///   charges one stage-recovery resynchronization.
    pub fn comm_degradation(&self, comm: &crate::CommComponent, nodes: usize) -> (f64, f64, f64) {
        let (e_tx, e_wait) = self.retry.expectations(self.loss_prob);
        let share = 1.0 / crate::Hypercube::fitting(nodes.max(2)).nodes() as f64;
        let mut wire_scale = 1.0f64;
        let mut extra = e_wait;
        for f in &self.link_faults {
            match f.state {
                LinkState::Degraded { factor } => {
                    wire_scale += (factor.max(1.0) - 1.0) * share;
                }
                LinkState::Down => {
                    wire_scale += 2.0 * share;
                    extra += 2.0 * comm.per_hop_s;
                }
            }
        }
        if self.needs_recovery() {
            extra += comm.sync_overhead_s;
        }
        (e_tx, e_tx * wire_scale, extra)
    }
}

impl MachineModel {
    /// Analytic degraded-mode re-abstraction of the machine under `plan`:
    /// the SAU parameters the interpretation engine consults are rescaled
    /// so that predictions model the faulted machine. Zero-fault plans
    /// return an identical clone.
    pub fn degrade(&self, plan: &FaultPlan) -> MachineModel {
        if plan.is_zero() {
            return self.clone();
        }
        let mut m = self.clone();
        m.name = format!("{} [{}]", self.name, plan.name);

        // Processing/memory: the slowest node gates every synchronized
        // SPMD phase, so the whole abstraction runs at its clock.
        let slow = plan.max_slowdown();
        if slow > 1.0 {
            m.node_processing.clock_mhz /= slow;
            m.node_memory.clock_mhz /= slow;
        }

        // Communication: retransmissions and link degradation. Startup
        // latencies scale only with retransmissions; per-byte wire time
        // additionally pays the worst-link factor.
        let (lat_scale, wire_scale, extra) = plan.comm_degradation(&self.comm, self.nodes);
        m.comm.short_latency_s = m.comm.short_latency_s * lat_scale + extra;
        m.comm.long_latency_s = m.comm.long_latency_s * lat_scale + extra;
        m.comm.per_byte_s *= wire_scale;
        m.comm.per_hop_s *= wire_scale;

        // The fitted collective models were benchmarked on the healthy
        // machine; rescale them by the same degradation so calibrated
        // predictions see the faults too (α is latency-like, β is
        // per-byte wire time).
        if let Some(cal) = &mut m.calibration {
            for pc in cal.comm.values_mut() {
                pc.small.alpha_s = pc.small.alpha_s * lat_scale + extra;
                pc.small.beta_s_per_byte *= wire_scale;
                pc.large.alpha_s = pc.large.alpha_s * lat_scale + extra;
                pc.large.beta_s_per_byte *= wire_scale;
            }
        }
        m
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ipsc860;

    #[test]
    fn zero_plan_is_identity() {
        let m = ipsc860(8);
        let plan = FaultPlan::none();
        assert!(plan.is_zero());
        let d = m.degrade(&plan);
        assert_eq!(d.name, m.name);
        assert_eq!(d.comm.short_latency_s, m.comm.short_latency_s);
        assert_eq!(d.node_processing.clock_mhz, m.node_processing.clock_mhz);
    }

    #[test]
    fn slow_node_gates_processing() {
        let m = ipsc860(8);
        let d = m.degrade(&FaultPlan::slow_node(3, 2.0));
        assert_eq!(
            d.node_processing.clock_mhz,
            m.node_processing.clock_mhz / 2.0
        );
        assert_eq!(d.node_memory.clock_mhz, m.node_memory.clock_mhz / 2.0);
        // comm untouched by a pure node fault
        assert_eq!(d.comm.per_byte_s, m.comm.per_byte_s);
    }

    #[test]
    fn degraded_link_scales_wire_time() {
        let m = ipsc860(8);
        let d = m.degrade(&FaultPlan::degraded_link(0, 1, 4.0));
        // One link of the 8-node cube carries a 1/8 traffic share:
        // wire scale = 1 + (4-1)/8.
        assert_eq!(d.comm.per_byte_s, m.comm.per_byte_s * 1.375);
        assert!(d.comm.short_latency_s >= m.comm.short_latency_s);
        // compute untouched by a pure link fault
        assert_eq!(d.node_processing.clock_mhz, m.node_processing.clock_mhz);
    }

    #[test]
    fn loss_adds_expected_retransmissions() {
        let rp = RetryPolicy::default();
        let (tx0, w0) = rp.expectations(0.0);
        assert_eq!(tx0, 1.0);
        assert_eq!(w0, 0.0);
        let (tx, w) = rp.expectations(0.2);
        assert!(tx > 1.0 && tx < 1.3, "E[tx] {tx}");
        assert!(w > 0.0);
        // more loss, more retransmissions
        let (tx5, _) = rp.expectations(0.5);
        assert!(tx5 > tx);
    }

    #[test]
    fn link_state_is_undirected() {
        let plan = FaultPlan::degraded_link(2, 5, 3.0);
        assert!(plan.link_state(5, 2).is_some());
        assert!(plan.link_state(2, 5).is_some());
        assert!(plan.link_state(0, 1).is_none());
    }

    #[test]
    fn recovery_needed_only_for_loss_or_severed_links() {
        assert!(!FaultPlan::none().needs_recovery());
        assert!(!FaultPlan::degraded_link(0, 1, 2.0).needs_recovery());
        assert!(!FaultPlan::slow_node(0, 2.0).needs_recovery());
        assert!(FaultPlan::lossy(0.05).needs_recovery());
        assert!(FaultPlan::link_down(0, 1).needs_recovery());
    }

    #[test]
    fn degrade_rescales_calibration() {
        let mut m = ipsc860(4);
        let mut cal = crate::Calibration {
            compute_scale: 1.0,
            comm: Default::default(),
            io: Default::default(),
        };
        cal.comm.insert(
            crate::Calibration::key(crate::CollectiveOp::Reduce, 4),
            crate::PiecewiseCost {
                boundary: 100,
                small: crate::LinearCost {
                    alpha_s: 1e-4,
                    beta_s_per_byte: 1e-7,
                },
                large: crate::LinearCost {
                    alpha_s: 2e-4,
                    beta_s_per_byte: 2e-7,
                },
            },
        );
        m.calibration = Some(cal);
        let d = m.degrade(&FaultPlan::degraded_link(0, 1, 2.0));
        let t_healthy = m.collective_time(crate::CollectiveOp::Reduce, 4, 1024);
        let t_degraded = d.collective_time(crate::CollectiveOp::Reduce, 4, 1024);
        assert!(t_degraded > 1.05 * t_healthy, "{t_degraded} vs {t_healthy}");
    }
}
