//! # hpf-machine — system characterization (Systems Module, §3.1)
//!
//! Abstracts an HPC system by hierarchical decomposition into a System
//! Abstraction Graph ([`Sau`] tree) whose units export Processing, Memory,
//! Communication/Synchronization and I/O parameter components. Ships the
//! off-line abstraction of the Intel iPSC/860 hypercube the paper targets:
//! 8 × i860 @ 40 MHz (4 KB I-cache, 8 KB D-cache, 8 MB DRAM per node),
//! hypercube interconnect with the NX short/long message regimes, the
//! collective/intrinsic library cost models, and the 80386-based SRM host.
//!
//! Parameter provenance mirrors §4.4: processing/memory from vendor
//! specifications, loop/branch overheads from instruction counts, and
//! communication parameters from calibration runs (against the `ipsc-sim`
//! discrete-event machine in this reproduction).

pub mod calibration;
pub mod collectives;
pub mod components;
pub mod faults;
pub mod sag;
pub mod topology;

pub use calibration::{Calibration, LinearCost, PiecewiseCost};
pub use collectives::{CollectiveModel, CollectiveOp};
pub use components::{CommComponent, IoComponent, MemoryComponent, OpClass, ProcessingComponent};
pub use faults::{FaultPlan, LinkFault, LinkState, NodeFault, RetryPolicy};
pub use sag::Sau;
pub use topology::{Hypercube, TopologyDesc};

use serde::{Deserialize, Serialize};

/// A complete abstracted machine: the SAG plus the flattened per-node
/// parameters the interpretation engine and the simulator consult directly.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MachineModel {
    pub name: String,
    pub sag: Sau,
    /// Number of compute nodes in use.
    pub nodes: usize,
    pub node_processing: ProcessingComponent,
    pub node_memory: MemoryComponent,
    pub comm: CommComponent,
    pub io: IoComponent,
    /// Fitted characterization parameters (benchmarking runs, §4.4); when
    /// present they override the closed-form collective model and scale
    /// computed op times.
    #[serde(default)]
    pub calibration: Option<Calibration>,
    /// Physical interconnect the DES routes messages over. Defaults to
    /// the iPSC/860 hypercube, so existing machine descriptions are
    /// unchanged; non-hypercube values switch the simulator onto the
    /// generic topology path implemented in `hpf-machines`.
    #[serde(default)]
    pub topology: TopologyDesc,
}

impl MachineModel {
    /// Hypercube big enough for the configured node count.
    pub fn cube(&self) -> Hypercube {
        Hypercube::fitting(self.nodes)
    }

    /// Collective cost model bound to this machine.
    pub fn collectives(&self) -> CollectiveModel<'_> {
        CollectiveModel {
            comm: &self.comm,
            proc: &self.node_processing,
            cube: self.cube(),
        }
    }

    /// Convenience: time for `op` with `p` participants and per-node payload.
    /// Uses the fitted characterization when available (§4.4), falling back
    /// to the closed-form hypercube model.
    pub fn collective_time(&self, op: CollectiveOp, p: usize, bytes: u64) -> f64 {
        if p > 1 {
            if let Some(cal) = &self.calibration {
                if let Some(t) = cal.collective_time(op, p, bytes) {
                    return t;
                }
            }
        }
        self.collectives().time(op, p, bytes)
    }

    /// Measured-to-counted scaling of computation times (1.0 before
    /// characterization).
    pub fn compute_scale(&self) -> f64 {
        self.calibration
            .as_ref()
            .map(|c| c.compute_scale)
            .unwrap_or(1.0)
    }
}

/// Processing component of one i860 node.
///
/// Cycle counts reflect compiled scalar Fortran 77 code paths (not the
/// dual-instruction peak): pipelined add/multiply at ~2 cycles effective,
/// the unpipelined divider at 38 cycles, transcendental library sequences,
/// and control overheads measured by instruction counting.
pub fn ipsc860_node_processing() -> ProcessingComponent {
    ProcessingComponent {
        clock_mhz: 40.0,
        fadd_cycles: 2.0,
        fmul_cycles: 2.0,
        fdiv_cycles: 38.0,
        ftrans_cycles: 110.0,
        int_cycles: 1.0,
        imul_cycles: 10.0,
        idiv_cycles: 40.0,
        cmp_cycles: 1.0,
        logical_cycles: 1.0,
        loop_iter_cycles: 4.0,
        loop_setup_cycles: 12.0,
        branch_cycles: 3.0,
        call_cycles: 25.0,
        index_cycles: 2.0,
    }
}

/// Memory component of one i860 node (4 KB I-cache, 8 KB D-cache, 8 MB
/// DRAM; 32-byte lines; ~1-cycle hits, ~12-cycle line fills).
pub fn ipsc860_node_memory() -> MemoryComponent {
    MemoryComponent {
        icache_bytes: 4 * 1024,
        dcache_bytes: 8 * 1024,
        main_bytes: 8 * 1024 * 1024,
        cache_line_bytes: 32,
        hit_cycles: 1.0,
        miss_penalty_cycles: 12.0,
        clock_mhz: 40.0,
    }
}

/// Communication component of the iPSC/860 Direct-Connect network under NX:
/// ~75 µs short-message latency, ~150 µs long-message latency with a 100-byte
/// regime boundary, ~2.8 MB/s per-channel bandwidth, ~2 µs extra per hop.
pub fn ipsc860_comm() -> CommComponent {
    CommComponent {
        short_latency_s: 75e-6,
        long_latency_s: 150e-6,
        short_threshold: 100,
        per_byte_s: 0.36e-6,
        per_hop_s: 2e-6,
        pack_per_byte_s: 0.05e-6,
        sync_overhead_s: 20e-6,
    }
}

/// I/O component: the 80386 SRM host and its channel to the cube, plus the
/// Concurrent-File-System-style striped I/O subsystem (two I/O nodes with
/// ~25 ms disks and ~1 MB/s streaming bandwidth, 4 KB stripe units).
pub fn ipsc860_io() -> IoComponent {
    IoComponent {
        load_bandwidth_bps: 500.0 * 1024.0,
        load_latency_s: 2.0,
        transfer_bandwidth_bps: 200.0 * 1024.0,
        io_servers: 2,
        stripe_bytes: 4096,
        disk_latency_s: 25e-3,
        disk_bandwidth_bps: 1024.0 * 1024.0,
        server_overhead_s: 0.5e-3,
    }
}

/// Processing parameters of the 80386-based SRM front end (only consulted
/// by workflow modeling; applications never run on the host).
pub fn srm_host_processing() -> ProcessingComponent {
    ProcessingComponent {
        clock_mhz: 16.0,
        fadd_cycles: 20.0,
        fmul_cycles: 30.0,
        fdiv_cycles: 80.0,
        ftrans_cycles: 300.0,
        int_cycles: 2.0,
        imul_cycles: 20.0,
        idiv_cycles: 40.0,
        cmp_cycles: 2.0,
        logical_cycles: 2.0,
        loop_iter_cycles: 6.0,
        loop_setup_cycles: 15.0,
        branch_cycles: 4.0,
        call_cycles: 40.0,
        index_cycles: 3.0,
    }
}

/// Build the full iPSC/860 abstraction with `nodes` compute nodes (the
/// paper's configuration has 8).
pub fn ipsc860(nodes: usize) -> MachineModel {
    assert!(nodes >= 1, "at least one node");
    let proc_ = ipsc860_node_processing();
    let mem = ipsc860_node_memory();
    let comm = ipsc860_comm();
    let io = ipsc860_io();

    let mut cube = Sau::structural("i860 cube");
    cube.comm = Some(comm.clone());
    for i in 0..nodes {
        let mut n = Sau::structural(format!("node {i}"));
        n.processing = Some(proc_.clone());
        n.memory = Some(mem.clone());
        cube.children.push(n);
    }

    let mut host = Sau::structural("SRM host");
    host.io = Some(io.clone());
    host.processing = Some(srm_host_processing());

    let mut root = Sau::structural("iPSC/860 system");
    root.children.push(host);
    root.children.push(cube);

    MachineModel {
        name: format!("iPSC/860 ({nodes} nodes)"),
        sag: root,
        nodes,
        node_processing: proc_,
        node_memory: mem,
        comm,
        io,
        calibration: None,
        topology: TopologyDesc::Hypercube,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_machine_matches_paper_config() {
        let m = ipsc860(8);
        assert_eq!(m.nodes, 8);
        assert_eq!(m.cube().dim, 3);
        assert_eq!(m.node_memory.dcache_bytes, 8 * 1024);
        assert_eq!(m.node_memory.icache_bytes, 4 * 1024);
        assert_eq!(m.node_memory.main_bytes, 8 * 1024 * 1024);
        assert_eq!(m.node_processing.clock_mhz, 40.0);
    }

    #[test]
    fn collective_time_convenience() {
        let m = ipsc860(8);
        let t = m.collective_time(CollectiveOp::Reduce, 8, 4);
        assert!(t > 0.0 && t < 0.01, "reduce time {t}");
    }

    #[test]
    #[should_panic]
    fn zero_nodes_rejected() {
        ipsc860(0);
    }

    #[test]
    fn host_is_slower_than_node() {
        let host = srm_host_processing();
        let node = ipsc860_node_processing();
        assert!(host.op_time(OpClass::FMul) > node.op_time(OpClass::FMul));
    }
}

/// Build an abstraction of a network-of-workstations HPDC target — the
/// paper's §7 direction ("moving it to high performance distributed
/// computing systems"). Faster nodes (a SPARC-class workstation) but a
/// shared-medium LAN: ~1 ms message latency, ~1 MB/s effective bandwidth,
/// no cut-through routing (every pair is one "hop" on the shared segment).
pub fn now_cluster(nodes: usize) -> MachineModel {
    assert!(nodes >= 1, "at least one node");
    let proc_ = ProcessingComponent {
        clock_mhz: 50.0,
        fadd_cycles: 1.5,
        fmul_cycles: 1.5,
        fdiv_cycles: 20.0,
        ftrans_cycles: 80.0,
        int_cycles: 1.0,
        imul_cycles: 5.0,
        idiv_cycles: 20.0,
        cmp_cycles: 1.0,
        logical_cycles: 1.0,
        loop_iter_cycles: 3.0,
        loop_setup_cycles: 10.0,
        branch_cycles: 2.0,
        call_cycles: 20.0,
        index_cycles: 1.5,
    };
    let mem = MemoryComponent {
        icache_bytes: 20 * 1024,
        dcache_bytes: 16 * 1024,
        main_bytes: 32 * 1024 * 1024,
        cache_line_bytes: 32,
        hit_cycles: 1.0,
        miss_penalty_cycles: 15.0,
        clock_mhz: 50.0,
    };
    let comm = CommComponent {
        short_latency_s: 1000e-6,
        long_latency_s: 1200e-6,
        short_threshold: 512,
        per_byte_s: 1.0e-6,
        per_hop_s: 0.0,
        pack_per_byte_s: 0.03e-6,
        sync_overhead_s: 200e-6,
    };
    let io = IoComponent {
        load_bandwidth_bps: 1024.0 * 1024.0,
        load_latency_s: 0.5,
        transfer_bandwidth_bps: 1024.0 * 1024.0,
        io_servers: 1,
        stripe_bytes: 8192,
        disk_latency_s: 15e-3,
        disk_bandwidth_bps: 2.0 * 1024.0 * 1024.0,
        server_overhead_s: 0.3e-3,
    };

    let mut lan = Sau::structural("shared LAN");
    lan.comm = Some(comm.clone());
    for i in 0..nodes {
        let mut n = Sau::structural(format!("workstation {i}"));
        n.processing = Some(proc_.clone());
        n.memory = Some(mem.clone());
        lan.children.push(n);
    }
    let mut root = Sau::structural("NOW cluster");
    root.io = Some(io.clone());
    root.children.push(lan);

    MachineModel {
        name: format!("NOW cluster ({nodes} workstations)"),
        sag: root,
        nodes,
        node_processing: proc_,
        node_memory: mem,
        comm,
        io,
        calibration: None,
        topology: TopologyDesc::Hypercube,
    }
}

#[cfg(test)]
mod cluster_tests {
    use super::*;

    #[test]
    fn cluster_nodes_faster_network_slower() {
        let cube = ipsc860(8);
        let now = now_cluster(8);
        assert!(
            now.node_processing.op_time(OpClass::FMul)
                < cube.node_processing.op_time(OpClass::FMul)
        );
        assert!(now.comm.short_latency_s > 5.0 * cube.comm.short_latency_s);
    }

    #[test]
    fn cluster_collectives_latency_bound() {
        let now = now_cluster(8);
        let t = now.collective_time(CollectiveOp::Reduce, 8, 4);
        assert!(
            t > 3.0 * now.comm.short_latency_s * 0.9,
            "log p stages of ≥1 ms: {t}"
        );
    }
}
