//! The System Abstraction Graph (SAG): a rooted tree of System Abstraction
//! Units (SAUs), each abstracting part of the HPC system into its four
//! parameter components (§3.1).

use crate::components::{CommComponent, IoComponent, MemoryComponent, ProcessingComponent};
use serde::{Deserialize, Serialize};

/// One System Abstraction Unit. Components are optional because interior
/// units (e.g. "the cube") may only export communication parameters while
/// leaves (nodes) export processing/memory parameters.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Sau {
    pub name: String,
    pub processing: Option<ProcessingComponent>,
    pub memory: Option<MemoryComponent>,
    pub comm: Option<CommComponent>,
    pub io: Option<IoComponent>,
    pub children: Vec<Sau>,
}

impl Sau {
    /// A unit with no components (pure structural node).
    pub fn structural(name: impl Into<String>) -> Sau {
        Sau {
            name: name.into(),
            processing: None,
            memory: None,
            comm: None,
            io: None,
            children: Vec::new(),
        }
    }

    /// Depth-first search by name.
    pub fn find(&self, name: &str) -> Option<&Sau> {
        if self.name == name {
            return Some(self);
        }
        self.children.iter().find_map(|c| c.find(name))
    }

    /// The nearest (self-or-ancestor-provided) component lookup used by the
    /// interpretation engine: a leaf inherits parameters its parent exports.
    pub fn resolve<'a, T>(
        &'a self,
        path: &[&str],
        get: impl Fn(&'a Sau) -> Option<&'a T> + Copy,
    ) -> Option<&'a T> {
        // Walk down `path`, remembering the deepest unit that exports T.
        let mut cur = self;
        let mut best = get(cur);
        for name in path {
            cur = cur.children.iter().find(|c| c.name == *name)?;
            if let Some(t) = get(cur) {
                best = Some(t);
            }
        }
        best
    }

    /// Number of leaves under this unit (counts itself if childless).
    pub fn leaf_count(&self) -> usize {
        if self.children.is_empty() {
            1
        } else {
            self.children.iter().map(|c| c.leaf_count()).sum()
        }
    }

    /// Render the tree as an indented outline (used by reports/examples to
    /// show the system characterization).
    pub fn outline(&self) -> String {
        let mut out = String::new();
        self.outline_into(0, &mut out);
        out
    }

    fn outline_into(&self, depth: usize, out: &mut String) {
        for _ in 0..depth {
            out.push_str("  ");
        }
        out.push_str(&self.name);
        let mut tags = Vec::new();
        if self.processing.is_some() {
            tags.push("P");
        }
        if self.memory.is_some() {
            tags.push("M");
        }
        if self.comm.is_some() {
            tags.push("C/S");
        }
        if self.io.is_some() {
            tags.push("I/O");
        }
        if !tags.is_empty() {
            out.push_str(&format!("  [{}]", tags.join(", ")));
        }
        out.push('\n');
        for c in &self.children {
            c.outline_into(depth + 1, out);
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::ipsc860;

    #[test]
    fn ipsc860_sag_structure() {
        let m = ipsc860(8);
        let sag = &m.sag;
        assert!(sag.find("SRM host").is_some());
        let cube = sag.find("i860 cube").unwrap();
        assert_eq!(cube.leaf_count(), 8);
        assert!(sag.find("node 0").is_some());
        assert!(sag.find("node 7").is_some());
        assert!(sag.find("node 8").is_none());
    }

    #[test]
    fn resolve_inherits_from_ancestor() {
        let m = ipsc860(4);
        // Nodes do not carry their own comm component; they inherit the
        // cube-level C/S parameters.
        let comm = m.sag.resolve(&["i860 cube", "node 0"], |s| s.comm.as_ref());
        assert!(comm.is_some());
        let proc_ = m
            .sag
            .resolve(&["i860 cube", "node 0"], |s| s.processing.as_ref());
        assert!(proc_.is_some());
    }

    #[test]
    fn outline_mentions_components() {
        let m = ipsc860(2);
        let o = m.sag.outline();
        assert!(o.contains("iPSC/860"));
        assert!(o.contains("C/S"));
        assert!(o.contains("I/O"));
    }
}
