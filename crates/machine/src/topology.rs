//! Hypercube topology of the iPSC/860: node addressing, e-cube routing and
//! neighbor relations, shared by the communication cost models and by the
//! discrete-event simulator's network.
//!
//! Also declares [`TopologyDesc`], the serializable interconnect
//! description a [`crate::MachineModel`] carries so the simulator can
//! route messages over the machine's physical network. The concrete
//! routing/link-occupancy implementations for non-hypercube topologies
//! live in the `hpf-machines` crate behind its `Topology` trait; this
//! enum is only the data the SAU tables travel with.

use serde::{Deserialize, Serialize};

/// The physical interconnect of an abstracted machine. `Hypercube` is the
/// serde default, so every pre-existing machine description (and every
/// constructor in this crate) keeps the iPSC/860 network unchanged.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum TopologyDesc {
    /// Binary hypercube with e-cube (dimension-ordered) routing — the
    /// iPSC/860 Direct-Connect network.
    #[default]
    Hypercube,
    /// k-ary torus/mesh with dimension-ordered shortest-wrap routing;
    /// `dims` are the per-dimension extents (2 entries = 2D, 3 = 3D).
    Torus { dims: Vec<usize> },
    /// Two-level fat tree: `radix` nodes per leaf switch, leaf switches
    /// under one root layer, up/down routing.
    FatTree { radix: usize },
    /// Idealized full crossbar (a modern multicore node): every pair one
    /// hop apart, contention only at the receiver port.
    Crossbar,
}

impl TopologyDesc {
    /// Short stable label used in diagnostics and metric names.
    pub fn label(&self) -> &'static str {
        match self {
            TopologyDesc::Hypercube => "hypercube",
            TopologyDesc::Torus { dims } if dims.len() == 2 => "torus2d",
            TopologyDesc::Torus { .. } => "torus3d",
            TopologyDesc::FatTree { .. } => "fat-tree",
            TopologyDesc::Crossbar => "crossbar",
        }
    }
}

/// A hypercube of `2^dim` nodes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Hypercube {
    pub dim: u32,
}

impl Hypercube {
    /// Smallest hypercube holding at least `n` nodes.
    pub fn fitting(n: usize) -> Hypercube {
        let mut dim = 0;
        while (1usize << dim) < n {
            dim += 1;
        }
        Hypercube { dim }
    }

    pub fn nodes(&self) -> usize {
        1 << self.dim
    }

    /// Hamming distance — the number of hops of the e-cube route.
    pub fn hops(&self, a: usize, b: usize) -> u32 {
        ((a ^ b) as u64).count_ones()
    }

    /// Neighbor of `node` across dimension `d`.
    pub fn neighbor(&self, node: usize, d: u32) -> usize {
        node ^ (1 << d)
    }

    /// The e-cube (dimension-ordered) route from `a` to `b`, as the sequence
    /// of intermediate nodes ending at `b` (empty if `a == b`). E-cube
    /// routing resolves dimensions lowest-first, which is deadlock-free.
    pub fn route(&self, a: usize, b: usize) -> Vec<usize> {
        let mut path = Vec::new();
        let mut cur = a;
        for d in 0..self.dim {
            if (cur ^ b) & (1 << d) != 0 {
                cur ^= 1 << d;
                path.push(cur);
            }
        }
        debug_assert_eq!(cur, b);
        path
    }

    /// Links traversed by the e-cube route, as (from, to) pairs.
    pub fn route_links(&self, a: usize, b: usize) -> Vec<(usize, usize)> {
        let mut links = Vec::new();
        let mut cur = a;
        for next in self.route(a, b) {
            links.push((cur, next));
            links.last().expect("pushed");
            cur = next;
        }
        links
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fitting_rounds_up() {
        assert_eq!(Hypercube::fitting(1).dim, 0);
        assert_eq!(Hypercube::fitting(2).dim, 1);
        assert_eq!(Hypercube::fitting(3).dim, 2);
        assert_eq!(Hypercube::fitting(8).dim, 3);
        assert_eq!(Hypercube::fitting(9).dim, 4);
    }

    #[test]
    fn hops_is_hamming_distance() {
        let h = Hypercube { dim: 3 };
        assert_eq!(h.hops(0, 7), 3);
        assert_eq!(h.hops(5, 5), 0);
        assert_eq!(h.hops(0b001, 0b011), 1);
    }

    #[test]
    fn route_is_minimal_and_ends_at_target() {
        let h = Hypercube { dim: 4 };
        for a in 0..h.nodes() {
            for b in 0..h.nodes() {
                let r = h.route(a, b);
                assert_eq!(r.len() as u32, h.hops(a, b));
                if a != b {
                    assert_eq!(*r.last().unwrap(), b);
                }
                // each step flips exactly one bit
                let mut prev = a;
                for &n in &r {
                    assert_eq!(h.hops(prev, n), 1);
                    prev = n;
                }
            }
        }
    }

    #[test]
    fn route_is_dimension_ordered() {
        let h = Hypercube { dim: 3 };
        let r = h.route(0b000, 0b101);
        assert_eq!(r, vec![0b001, 0b101]); // dim 0 first, then dim 2
    }

    #[test]
    fn neighbors_are_symmetric() {
        let h = Hypercube { dim: 3 };
        for n in 0..h.nodes() {
            for d in 0..h.dim {
                assert_eq!(h.neighbor(h.neighbor(n, d), d), n);
            }
        }
    }
}
