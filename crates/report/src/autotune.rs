//! The "intelligent compiler" of the paper's §7: "a tool \[that\] will enable
//! the compiler to automatically evaluate directives and transformation
//! choices and optimize the application at compile time."
//!
//! Given a program with a TEMPLATE, enumerate candidate DISTRIBUTE formats
//! (and processor-grid shapes), predict each variant with the interpretation
//! engine, and return the ranking — source-driven, no execution.

use crate::pipeline::{predict_source, PipelineError, PipelineStage, PredictOptions};
use hpf_lang::ast::{Directive, DistFormat};
use hpf_lang::{parse_program, pretty_program};
use serde::Serialize;

/// One evaluated directive alternative.
#[derive(Debug, Clone, Serialize)]
pub struct DirectiveChoice {
    /// The DISTRIBUTE formats per template dimension, e.g. `(BLOCK,*)`.
    pub formats: Vec<String>,
    /// Processor grid extents used.
    pub grid: Vec<i64>,
    pub predicted_s: f64,
}

impl DirectiveChoice {
    pub fn label(&self) -> String {
        format!("({})", self.formats.join(","))
    }
}

/// Enumerate all BLOCK/CYCLIC/`*` combinations for the program's first
/// DISTRIBUTE directive (and matching grid reshapes), predict each, and
/// return the choices sorted best-first.
///
/// The search is exhaustive over `3^rank − 1` format tuples (the all-`*`
/// tuple is excluded: it serializes the program), exactly the design space
/// §5.2.1 explores by hand for the Laplace solver.
pub fn search_distributions(
    src: &str,
    nodes: usize,
) -> Result<Vec<DirectiveChoice>, PipelineError> {
    let program = parse_program(src)?;

    // Locate the directive to rewrite.
    let (target_name, rank) = program
        .directives
        .iter()
        .find_map(|d| match d {
            Directive::Distribute {
                target, formats, ..
            } => Some((target.clone(), formats.len())),
            _ => None,
        })
        .ok_or_else(|| {
            PipelineError::new(
                PipelineStage::Analyze,
                "program has no DISTRIBUTE directive",
            )
        })?;

    let mut results = Vec::new();
    for combo in format_combos(rank) {
        if combo.iter().all(|f| *f == DistFormat::Degenerate) {
            continue; // fully collapsed: no parallelism
        }
        // Rewrite the AST and re-render — the "edit the directives" step,
        // done mechanically.
        let mut variant = program.clone();
        let dist_dims = combo
            .iter()
            .filter(|f| **f != DistFormat::Degenerate)
            .count();
        for d in &mut variant.directives {
            match d {
                Directive::Distribute {
                    target, formats, ..
                } if *target == target_name => {
                    *formats = combo.clone();
                }
                Directive::Processors { shape, .. } => {
                    // Reshape the grid to match the number of distributed
                    // dimensions (near-square factorization of `nodes`).
                    *shape = grid_for(nodes, dist_dims)
                        .into_iter()
                        .map(hpf_lang::Expr::int)
                        .collect();
                }
                _ => {}
            }
        }
        let text = pretty_program(&variant);
        let pred = match predict_source(&text, &PredictOptions::with_nodes(nodes)) {
            Ok(p) => p,
            Err(_) => continue, // combination not expressible; skip
        };
        results.push(DirectiveChoice {
            formats: combo.iter().map(|f| f.name().to_string()).collect(),
            grid: grid_for(nodes, dist_dims),
            predicted_s: pred.total_seconds(),
        });
    }
    results.sort_by(|a, b| a.predicted_s.total_cmp(&b.predicted_s));
    Ok(results)
}

/// All `3^rank` format tuples.
fn format_combos(rank: usize) -> Vec<Vec<DistFormat>> {
    let opts = [
        DistFormat::Block,
        DistFormat::Cyclic,
        DistFormat::Degenerate,
    ];
    let mut combos: Vec<Vec<DistFormat>> = vec![Vec::new()];
    for _ in 0..rank {
        let mut next = Vec::new();
        for c in &combos {
            for o in opts {
                let mut c2 = c.clone();
                c2.push(o);
                next.push(c2);
            }
        }
        combos = next;
    }
    combos
}

/// Near-square power-of-two factorization of `nodes` into `dims` extents.
fn grid_for(nodes: usize, dims: usize) -> Vec<i64> {
    let dims = dims.max(1);
    let mut extents = vec![1i64; dims];
    let mut rem = nodes as i64;
    while rem > 1 {
        let d = (0..dims).min_by_key(|&d| extents[d]).expect("dims >= 1");
        if rem % 2 == 0 {
            extents[d] *= 2;
            rem /= 2;
        } else {
            extents[d] *= rem;
            rem = 1;
        }
    }
    extents
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn combo_enumeration() {
        assert_eq!(format_combos(1).len(), 3);
        assert_eq!(format_combos(2).len(), 9);
        assert_eq!(grid_for(8, 2), vec![4, 2]);
        assert_eq!(grid_for(4, 1), vec![4]);
    }

    #[test]
    fn laplace_search_picks_block_star() {
        let src = kernels::kernel_by_name("Laplace (Blk-Blk)")
            .unwrap()
            .source(256, 4);
        let choices = search_distributions(&src, 4).unwrap();
        assert!(choices.len() >= 6, "explored {} variants", choices.len());
        let best = &choices[0];
        assert_eq!(
            best.formats,
            vec!["BLOCK".to_string(), "*".to_string()],
            "best should be (BLOCK,*): got {choices:?}"
        );
        // ranking is sorted
        for w in choices.windows(2) {
            assert!(w[0].predicted_s <= w[1].predicted_s);
        }
    }

    #[test]
    fn search_requires_distribute() {
        assert!(search_distributions("PROGRAM T\nREAL X\nX = 1.0\nEND\n", 4).is_err());
    }
}
