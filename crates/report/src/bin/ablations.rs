//! Ablations of the interpretation engine's models (DESIGN.md §5): what
//! does each modeling decision contribute to prediction accuracy?
//!
//! For each ablation, re-predict the benchmark set and report the change in
//! error against the simulated machine.

use hpf_report::experiments::SweepConfig;
use hpf_report::pipeline::{calibrated_machine, compile_source, predict_source_on, PredictOptions};
use interp::InterpOptions;
use ipsc_sim::{SimConfig, Simulator};

struct Ablation {
    name: &'static str,
    interp: InterpOptions,
    /// Strip the measured calibration (pure instruction-count model)?
    uncalibrated: bool,
    /// Compiler loop-reordering optimization on?
    loop_reorder: bool,
}

fn main() {
    let cfg = SweepConfig {
        runs: 200,
        ..SweepConfig::quick()
    };
    let apps = [
        ("PI", 1024usize),
        ("LFK 1", 1024),
        ("LFK 22", 1024),
        ("Laplace (X-Blk)", 128),
        ("Financial", 256),
    ];
    let procs = 4usize;

    let ablations = [
        Ablation {
            name: "full model",
            interp: InterpOptions::default(),
            uncalibrated: false,
            loop_reorder: false,
        },
        Ablation {
            name: "no memory hierarchy",
            interp: InterpOptions {
                memory_hierarchy: false,
                ..Default::default()
            },
            uncalibrated: false,
            loop_reorder: false,
        },
        Ablation {
            name: "with comp/comm overlap",
            interp: InterpOptions {
                overlap_comp_comm: true,
                ..Default::default()
            },
            uncalibrated: false,
            loop_reorder: false,
        },
        Ablation {
            name: "uncalibrated machine",
            interp: InterpOptions::default(),
            uncalibrated: true,
            loop_reorder: false,
        },
        Ablation {
            name: "loop reordering opt.",
            interp: InterpOptions::default(),
            uncalibrated: false,
            loop_reorder: true,
        },
    ];

    println!("Model ablations — mean |error| vs the simulated machine ({procs} procs)\n");
    print!("{:<24}", "ablation");
    for (name, _) in &apps {
        print!(" {:>16}", name);
    }
    println!(" {:>9}", "mean");

    for ab in &ablations {
        let mut errs = Vec::new();
        print!("{:<24}", ab.name);
        for (name, size) in &apps {
            let kernel = kernels::kernel_by_name(name).expect("kernel");
            let src = kernel.source(*size, procs);

            let mut machine = calibrated_machine(procs);
            if ab.uncalibrated {
                machine.calibration = None;
            }
            let mut popts = PredictOptions::with_nodes(procs);
            popts.interp = ab.interp.clone();
            popts.compile.loop_reorder = ab.loop_reorder;
            let mut copts = popts.compile.clone();
            copts.loop_reorder = ab.loop_reorder;

            let pred = predict_source_on(&src, &machine, &popts).expect("predict");

            // Ground truth independent of the ablation (the machine doesn't
            // change because our model of it does).
            let (analyzed, spmd) = compile_source(
                &src,
                procs,
                &Default::default(),
                &hpf_compiler::CompileOptions {
                    nodes: procs,
                    ..Default::default()
                },
            )
            .expect("compile");
            let profile = hpf_eval::run_with_limit(&analyzed, cfg.profile_steps)
                .ok()
                .map(|o| o.profile);
            let raw = machine::ipsc860(procs);
            let meas = Simulator::with_config(
                &raw,
                SimConfig {
                    runs: cfg.runs,
                    ..Default::default()
                },
            )
            .simulate(&spmd, profile.as_ref());

            let err = 100.0 * (pred.total_seconds() - meas.mean).abs() / meas.mean;
            errs.push(err);
            print!(" {err:>15.1}%");
        }
        let mean = errs.iter().sum::<f64>() / errs.len() as f64;
        println!(" {mean:>8.1}%");
    }
    println!(
        "\nReading: removing the memory-hierarchy model or the measured calibration\n\
         should inflate errors; overlap barely matters on the NX-style network\n\
         (little overlap capacity); loop reordering changes the *program*, so its\n\
         row shows model-vs-unoptimized-machine mismatch."
    );
}
