//! The "intelligent compiler" extension (§7): automatically evaluate all
//! DISTRIBUTE alternatives for a program and report the predicted ranking.
//!
//! Usage: `autotune [kernel-name] [size] [procs]`

use hpf_report::autotune::search_distributions;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let name = args
        .get(1)
        .map(String::as_str)
        .unwrap_or("Laplace (Blk-Blk)");
    let size: usize = args.get(2).and_then(|v| v.parse().ok()).unwrap_or(256);
    let procs: usize = args.get(3).and_then(|v| v.parse().ok()).unwrap_or(4);

    let kernel = kernels::kernel_by_name(name).unwrap_or_else(|| {
        eprintln!("unknown kernel `{name}` — see `table1` for names");
        std::process::exit(1);
    });
    let src = kernel.source(size, procs);
    println!("Directive search for {name} (n={size}, p={procs})\n");
    match search_distributions(&src, procs) {
        Ok(choices) => {
            println!(
                "{:<18} {:>10} {:>14}",
                "DISTRIBUTE", "grid", "predicted (s)"
            );
            for c in &choices {
                println!(
                    "{:<18} {:>10} {:>14.6}",
                    c.label(),
                    format!("{:?}", c.grid),
                    c.predicted_s
                );
            }
            if let Some(best) = choices.first() {
                println!(
                    "\nselected: DISTRIBUTE {} ONTO {:?}",
                    best.label(),
                    best.grid
                );
            }
        }
        Err(e) => eprintln!("search failed: {e}"),
    }
}
