//! Dump the off-line system characterization (§4.4): the SAG outline, the
//! processing/memory/comm/I/O parameters, and the fitted collective-library
//! models produced by the benchmarking runs.
//!
//! Usage: `characterize [nodes]`
//!        `characterize --machine <name> [nodes]`
//!        `characterize --list-machines`

use machine::{CollectiveOp, OpClass};

/// One line per registered backend: name, interconnect, supported node
/// range, and where its SAU parameter tables come from.
fn list_machines() {
    println!("Registered machines (hpf-machines registry):");
    println!(
        "  {:<12} {:<10} {:<12} calibration provenance",
        "name", "topology", "nodes"
    );
    for name in hpf_machines::machine_names() {
        let backend = hpf_machines::machine(name).expect("registered");
        let (lo, hi) = backend.node_range();
        let topo = backend
            .params(8usize.clamp(lo, hi))
            .map(|m| m.topology.label())
            .unwrap_or("?");
        println!(
            "  {:<12} {:<10} {:<12} {}",
            name,
            topo,
            format!("{lo}..{hi}"),
            backend.provenance()
        );
        println!("               {}", backend.description());
        // Whether the calibration pass fits a striped-I/O table for this
        // backend, or predictions fall back to the default closed form.
        let io_note = match ipsc_sim::calibrate_backend(backend, 8usize.clamp(lo, hi)) {
            Ok(m) => match &m.calibration {
                Some(cal) if !cal.io.is_empty() => "fitted (calibration pass)",
                _ => "default (closed form)",
            },
            Err(_) => "default (closed form)",
        };
        println!("               i/o table: {io_note}");
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--list-machines") {
        list_machines();
        return;
    }
    let mut machine_name: Option<String> = None;
    let mut positional: Option<usize> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--machine" => {
                machine_name = args.get(i + 1).cloned();
                if machine_name.is_none() {
                    eprintln!("--machine requires a name (try --list-machines)");
                    std::process::exit(2);
                }
                i += 2;
            }
            a => {
                positional = a.parse().ok();
                i += 1;
            }
        }
    }
    let nodes: usize = positional.unwrap_or(8);
    let m = match machine_name.as_deref() {
        // The default path is byte-identical to the historical
        // `characterize [nodes]` output: same calibration entry point.
        None => ipsc_sim::calibrate(nodes),
        Some(name) => {
            let backend = match hpf_machines::machine(name) {
                Ok(b) => b,
                Err(e) => {
                    eprintln!("error: {e}");
                    std::process::exit(2);
                }
            };
            match ipsc_sim::calibrate_backend(backend, nodes) {
                Ok(m) => m,
                Err(e) => {
                    eprintln!("error: {e}");
                    std::process::exit(2);
                }
            }
        }
    };

    println!("System characterization: {}", m.name);
    println!("\n== System Abstraction Graph ==");
    println!("{}", m.sag.outline());

    let p = &m.node_processing;
    println!("== Processing component (node) ==");
    println!("  clock             : {} MHz", p.clock_mhz);
    for (label, op) in [
        ("FP add/sub", OpClass::FAdd),
        ("FP multiply", OpClass::FMul),
        ("FP divide", OpClass::FDiv),
        ("transcendental", OpClass::FTranscendental),
        ("integer ALU", OpClass::IntOp),
        ("compare", OpClass::Compare),
        ("loop iteration", OpClass::LoopIter),
        ("loop setup", OpClass::LoopSetup),
        ("branch", OpClass::Branch),
        ("call linkage", OpClass::Call),
        ("index calc", OpClass::Index),
    ] {
        println!("  {label:<18}: {:8.1} ns", p.op_time(op) * 1e9);
    }

    let mem = &m.node_memory;
    println!("\n== Memory component (node) ==");
    println!(
        "  I-cache {} KB, D-cache {} KB, DRAM {} MB, {}B lines",
        mem.icache_bytes / 1024,
        mem.dcache_bytes / 1024,
        mem.main_bytes / 1024 / 1024,
        mem.cache_line_bytes
    );
    println!(
        "  hit {:.0} ns, miss {:.0} ns",
        mem.access_time(1.0) * 1e9,
        mem.access_time(0.0) * 1e9
    );
    println!("  hit-ratio model: ws=4KB/unit-stride {:.3}, ws=1MB/unit-stride {:.3}, ws=1MB/strided {:.3}",
        mem.hit_ratio(4096, 4, 1.0), mem.hit_ratio(1 << 20, 4, 1.0), mem.hit_ratio(1 << 20, 4, 0.1));

    println!("\n== Communication component ==");
    println!(
        "  short latency {:.0} µs (≤{}B), long latency {:.0} µs, {:.2} µs/KB, {:.1} µs/hop",
        m.comm.short_latency_s * 1e6,
        m.comm.short_threshold,
        m.comm.long_latency_s * 1e6,
        m.comm.per_byte_s * 1e6 * 1024.0,
        m.comm.per_hop_s * 1e6
    );

    println!("\n== I/O component (striped servers + SRM host) ==");
    println!(
        "  servers: {} (default), stripe unit {} KB",
        m.io.io_servers,
        m.io.stripe_bytes / 1024
    );
    println!(
        "  disk: {:.2} ms latency, {:.2} MB/s stream, {:.3} ms/req server overhead",
        m.io.disk_latency_s * 1e3,
        m.io.disk_bandwidth_bps / (1024.0 * 1024.0),
        m.io.server_overhead_s * 1e3
    );
    println!(
        "  load: {:.1} s latency + {:.0} KB/s; transfer {:.0} KB/s",
        m.io.load_latency_s,
        m.io.load_bandwidth_bps / 1024.0,
        m.io.transfer_bandwidth_bps / 1024.0
    );

    if let Some(cal) = &m.calibration {
        println!("\n== Fitted characterization (benchmarking runs) ==");
        println!(
            "  compute scale: {:.4} (measured / instruction-counted)",
            cal.compute_scale
        );
        println!("\n  collective library (α + β·m, per regime):");
        println!(
            "  {:<12} {:>4}  {:>12} {:>12}   {:>12} {:>12}",
            "op", "p", "α_small(µs)", "β_s(ns/B)", "α_large(µs)", "β_l(ns/B)"
        );
        let ops = [
            ("shift", CollectiveOp::Shift),
            ("reduce", CollectiveOp::Reduce),
            ("maxloc", CollectiveOp::ReduceLoc),
            ("broadcast", CollectiveOp::Broadcast),
            ("all-to-all", CollectiveOp::AllToAll),
            ("gather", CollectiveOp::Gather),
            ("barrier", CollectiveOp::Barrier),
        ];
        let mut p2 = 2usize;
        while p2 <= nodes.max(2) {
            for (name, op) in ops {
                if let Some(pc) = cal.comm.get(&machine::Calibration::key(op, p2)) {
                    println!(
                        "  {:<12} {:>4}  {:>12.1} {:>12.2}   {:>12.1} {:>12.2}",
                        name,
                        p2,
                        pc.small.alpha_s * 1e6,
                        pc.small.beta_s_per_byte * 1e9,
                        pc.large.alpha_s * 1e6,
                        pc.large.beta_s_per_byte * 1e9
                    );
                }
            }
            if p2 >= nodes {
                break;
            }
            p2 *= 2;
        }

        if !cal.io.is_empty() {
            println!("\n  striped i/o (α + β·bytes, per regime; fitted at stripe factor 1):");
            println!(
                "  {:<8} {:>4}  {:>12} {:>12}   {:>12} {:>12}",
                "servers", "p", "α_small(µs)", "β_s(ns/B)", "α_large(µs)", "β_l(ns/B)"
            );
            for (&(s_log2, p_log2), pc) in &cal.io {
                println!(
                    "  {:<8} {:>4}  {:>12.1} {:>12.2}   {:>12.1} {:>12.2}",
                    1usize << s_log2,
                    1usize << p_log2,
                    pc.small.alpha_s * 1e6,
                    pc.small.beta_s_per_byte * 1e9,
                    pc.large.alpha_s * 1e6,
                    pc.large.beta_s_per_byte * 1e9
                );
            }
        }
    }
}
