//! Fault-injection experiment: predicted vs simulated execution time under
//! a set of fault plans (healthy control, degraded link, severed link, slow
//! node, lossy network). The prediction side uses the degraded machine
//! abstraction; the measured side injects the same plan into the
//! discrete-event network simulation. Deterministic for a fixed seed.
//!
//! Usage: `faults [--kernel NAME] [--size N] [--procs P] [--runs R]`

use hpf_report::faults::{fault_experiment, fault_table_text, FaultExperimentConfig};

const USAGE: &str = "usage: faults [--kernel NAME] [--size N] [--procs P] [--runs R]";

fn usage_err(msg: &str) -> ! {
    eprintln!("faults: {msg}\n{USAGE}");
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut cfg = FaultExperimentConfig::default();
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let value = |it: &mut std::slice::Iter<String>| -> String {
            it.next()
                .unwrap_or_else(|| usage_err(&format!("{flag} requires a value")))
                .clone()
        };
        let number = |flag: &str, v: &str| -> usize {
            v.parse()
                .unwrap_or_else(|_| usage_err(&format!("{flag} expects a number, got {v:?}")))
        };
        match flag.as_str() {
            "--kernel" => cfg.kernel = value(&mut it),
            "--size" => cfg.size = number(flag, &value(&mut it)),
            "--procs" => cfg.procs = number(flag, &value(&mut it)),
            "--runs" => cfg.runs = number(flag, &value(&mut it)),
            "--help" | "-h" => {
                println!("{USAGE}");
                return;
            }
            other => usage_err(&format!("unknown option {other:?}")),
        }
    }

    match fault_experiment(&cfg) {
        Ok(rows) => {
            println!("Fault injection: predicted (degraded abstraction) vs simulated (DES)");
            println!();
            print!("{}", fault_table_text(&cfg, &rows));
        }
        Err(e) => {
            eprintln!("faults: {e}");
            std::process::exit(1);
        }
    }
}
