//! Regenerate **Figure 2** — abstraction of the `forall` statement: the
//! Phase-1 three-level SPMD structure (communication / computation /
//! communication) and the Phase-2 sub-AAG (Seq → Comm → IterD ⊃ CondtD).

use hpf_report::experiments::figure2;

fn main() {
    let (spmd, aag) = figure2();
    println!("Figure 2: Abstraction of the forall statement");
    println!();
    println!("source:  FORALL (K=2:N-1, V(K) .GT. 0.0)  X(K+1) = X(K) + G(K)");
    println!();
    println!("Phase 1 — loosely synchronous SPMD structure:");
    println!("{spmd}");
    println!("Phase 2 — sub-AAG (application abstraction):");
    println!("{aag}");
}
