//! Regenerate **Figure 3** — the Laplace solver's three data distributions
//! on 4 processors, shown as ownership grids (digit = owning node).

use hpf_report::experiments::figure3;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let n = args.get(1).and_then(|v| v.parse().ok()).unwrap_or(16);
    let procs = args.get(2).and_then(|v| v.parse().ok()).unwrap_or(4);
    println!("Figure 3: Laplace Solver - Data Distributions ({procs} processors, {n}x{n})");
    println!();
    println!("{}", figure3(n, procs));
}
