//! Regenerate **Figures 6 & 7** — the financial model's application phases
//! and the per-phase interpreted performance profile (comp/comm/overhead),
//! 4 processors, problem size 256.

use hpf_report::experiments::figure7;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let size = args.get(1).and_then(|v| v.parse().ok()).unwrap_or(256);
    let procs = args.get(2).and_then(|v| v.parse().ok()).unwrap_or(4);

    println!("Figure 6: Financial Model — Application Phases");
    println!("  Phase 1: create stock price lattice (backward induction, shift per step)");
    println!("  Phase 2: compute call prices (local, no communication)");
    println!();
    println!("Figure 7: Stock Option Pricing — Interpreted Performance Profile");
    println!("  Procs = {procs}; Size = {size}");
    println!();
    let phases = figure7(size, procs);
    println!(
        "{:<36} {:>12} {:>12} {:>12}",
        "Phase", "Comp (µs)", "Comm (µs)", "Ovhd (µs)"
    );
    for p in &phases {
        println!(
            "{:<36} {:>12.1} {:>12.1} {:>12.1}",
            p.phase, p.comp_us, p.comm_us, p.overhead_us
        );
    }
    println!();
    // ASCII bars (scaled to the tallest phase total).
    let max: f64 = phases
        .iter()
        .map(|p| p.comp_us + p.comm_us + p.overhead_us)
        .fold(0.0, f64::max)
        .max(1.0);
    for p in &phases {
        let w = |x: f64| ((x / max) * 50.0).round() as usize;
        println!(
            "{:<10} [{}{}{}]",
            p.phase.split(' ').take(2).collect::<Vec<_>>().join(" "),
            "#".repeat(w(p.comp_us)),
            "~".repeat(w(p.comm_us)),
            "+".repeat(w(p.overhead_us)),
        );
    }
    println!("           # computation   ~ communication   + overhead");
}
