//! Regenerate **Figure 8** — experimentation time for the Laplace solver:
//! interpretive framework vs measurement on the (shared) iPSC/860, per
//! implementation variant; plus the wall-clock of this reproduction's own
//! two paths as the modern analog.

use hpf_report::workflow::{time_actual_paths, WorkflowModel};
use kernels::LaplaceDist;

fn main() {
    let machine = machine::ipsc860(8);
    let model = WorkflowModel::default();

    println!("Figure 8: Experimentation Time — Laplace Solver (16 instances per variant)");
    println!();
    println!(
        "{:<12} {:>18} {:>18}",
        "Impl.", "Interpreter (min)", "iPSC/860 (min)"
    );

    let variants = [
        (LaplaceDist::BlockBlock, 0.065),
        (LaplaceDist::BlockStar, 0.050),
        (LaplaceDist::StarBlock, 0.110),
    ];
    for (dist, mean_run_s) in variants {
        let t = model.variant_times(&machine, dist.label(), 16, 1000, mean_run_s);
        println!(
            "{:<12} {:>18.1} {:>18.1}",
            t.variant, t.interpreter_min, t.measured_min
        );
    }
    println!();
    println!("(paper: interpreter ≈10 min per variant; measurements 27–60 min)");
    println!();

    // The modern analog: actual wall time of our two code paths across the
    // same 16-size sweep.
    println!("Actual wall-clock of this reproduction's two paths (16 sizes, 4 procs):");
    for dist in [
        LaplaceDist::BlockBlock,
        LaplaceDist::BlockStar,
        LaplaceDist::StarBlock,
    ] {
        let kernel = kernels::Kernel {
            kind: kernels::KernelKind::Laplace(dist),
            name: "Laplace",
            description: "",
            is_kernel: false,
            size_range: (16, 256),
        };
        let sources: Vec<(usize, String)> = (1..=16)
            .map(|i| (i * 16, kernel.source(i * 16, 4)))
            .collect();
        let t = time_actual_paths(dist.label(), &sources, 4, 100);
        println!(
            "  {:<10} interpreter {:>8.2}s    simulated machine {:>8.2}s   ({:.0}x)",
            t.variant,
            t.interpreter_wall_s,
            t.simulator_wall_s,
            t.simulator_wall_s / t.interpreter_wall_s.max(1e-9)
        );
    }
}
