//! Regenerate **Figures 4 & 5** — Laplace solver estimated vs measured
//! execution time for the three distributions, on 4 processors (Fig. 4)
//! and 8 processors (Fig. 5), problem sizes 16…256.
//!
//! Usage: `figures4_5 [--runs R] [--max-size S]`

use hpf_report::experiments::laplace_curves;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let runs = args
        .iter()
        .position(|a| a == "--runs")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(200);
    let max_size = args
        .iter()
        .position(|a| a == "--max-size")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(256);

    let csv_path = args
        .iter()
        .position(|a| a == "--csv")
        .and_then(|i| args.get(i + 1).cloned());
    let mut all_points = Vec::new();

    for (fig, procs, grid) in [(4, 4, "2x2 / 4"), (5, 8, "2x4 / 8")] {
        println!(
            "Figure {fig}: Laplace Solver ({procs} Procs, grids {grid}) — estimated/measured (s)"
        );
        println!();
        let pts = laplace_curves(procs, max_size, runs);
        all_points.extend(pts.clone());
        println!(
            "{:>5}  {:>12} {:>12}   {:>12} {:>12}   {:>12} {:>12}",
            "N", "est(B,B)", "meas(B,B)", "est(B,*)", "meas(B,*)", "est(*,B)", "meas(*,B)"
        );
        let mut sizes: Vec<usize> = pts.iter().map(|p| p.size).collect();
        sizes.sort_unstable();
        sizes.dedup();
        for size in &sizes {
            let get = |d: &str| {
                pts.iter()
                    .find(|p| p.size == *size && p.dist == d)
                    .map(|p| (p.estimated_s, p.measured_s))
                    .unwrap_or((f64::NAN, f64::NAN))
            };
            let bb = get("(Blk,Blk)");
            let bs = get("(Blk,*)");
            let sb = get("(*,Blk)");
            println!(
                "{:>5}  {:>12.6} {:>12.6}   {:>12.6} {:>12.6}   {:>12.6} {:>12.6}",
                size, bb.0, bb.1, bs.0, bs.1, sb.0, sb.1
            );
        }
        // Directive-selection check at the largest size.
        if let Some(&n) = sizes.last() {
            let best_est = pts
                .iter()
                .filter(|p| p.size == n)
                .min_by(|a, b| a.estimated_s.total_cmp(&b.estimated_s))
                .unwrap();
            let best_meas = pts
                .iter()
                .filter(|p| p.size == n)
                .min_by(|a, b| a.measured_s.total_cmp(&b.measured_s))
                .unwrap();
            let max_err = pts
                .iter()
                .filter(|p| p.size == n)
                .map(|p| 100.0 * (p.estimated_s - p.measured_s).abs() / p.measured_s)
                .fold(0.0f64, f64::max);
            println!();
            println!(
                "at N={n}: predicted best = {}, measured best = {}, max |err| = {max_err:.1}%",
                best_est.dist, best_meas.dist
            );
            println!();
        }
    }

    if let Some(path) = csv_path {
        let _ = std::fs::write(&path, hpf_report::csv::laplace_csv(&all_points));
        eprintln!("wrote {path}");
    }
}
