//! `hpfenv` — the interactive HPF/Fortran 90D application development
//! environment (§3.4 / §5.3): load programs, vary parameters and
//! directives from within the interface, predict, compare, search.
//!
//! Run interactively, or pipe a script:
//! ```sh
//! printf 'set nodes 4\nkernel PI 1024\ncompare\nquit\n' | hpfenv
//! ```

use hpf_report::session::Session;
use std::io::{BufRead, Write};

fn main() {
    let mut session = Session::new();
    let stdin = std::io::stdin();
    let interactive = std::env::args().all(|a| a != "--batch");
    if interactive {
        println!("HPF/Fortran 90D performance interpretation environment — `help` for commands");
    }
    loop {
        if interactive {
            print!("hpf> ");
            let _ = std::io::stdout().flush();
        }
        let mut line = String::new();
        match stdin.lock().read_line(&mut line) {
            Ok(0) => break,
            Ok(_) => {}
            Err(_) => break,
        }
        match session.execute(&line) {
            Ok(out) => {
                if !out.is_empty() {
                    println!("{out}");
                }
            }
            Err(e) if e == "quit" => break,
            Err(e) => eprintln!("error: {e}"),
        }
    }
}
