//! Regenerate `artifacts_io_accuracy.txt` — the out-of-core
//! predicted-vs-simulated accuracy table per machine backend (the parallel
//! I/O subsystem's Table-2-style validation artifact).
//!
//! Usage: `io_accuracy [--threads N]` (output is bit-identical for any
//! thread count — the CI io-goldens job verifies at two).

use hpf_report::io_accuracy::{io_accuracy, io_accuracy_text, IoAccuracyConfig};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut threads = 1usize;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--threads" => {
                threads = args
                    .get(i + 1)
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| {
                        eprintln!("--threads requires a positive integer");
                        std::process::exit(2);
                    });
                i += 2;
            }
            other => {
                eprintln!("unknown argument {other:?}");
                std::process::exit(2);
            }
        }
    }
    let cfg = IoAccuracyConfig {
        threads,
        ..Default::default()
    };
    match io_accuracy(&cfg) {
        Ok(rows) => print!("{}", io_accuracy_text(&cfg, &rows)),
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    }
}
