//! Regenerate **Table 1** — the validation application set.

fn main() {
    println!("Table 1: Validation Application Set");
    println!("{:-<72}", "");
    println!("{:<20} Description", "Name");
    println!("{:-<72}", "");
    let mut last_group = "";
    for k in kernels::all_kernels() {
        let group = if k.name.starts_with("LFK") {
            "Livermore Fortran Kernels (LFK)"
        } else if k.name.starts_with("PBS") {
            "Purdue Benchmarking Set (PBS)"
        } else {
            ""
        };
        if group != last_group && !group.is_empty() {
            println!("{group}");
            last_group = group;
        }
        println!("{:<20} {}", k.name, k.description);
    }
    println!("{:-<72}", "");
    println!(
        "kernels: {}   applications: {}",
        kernels::all_kernels()
            .iter()
            .filter(|k| k.is_kernel)
            .count(),
        kernels::all_kernels()
            .iter()
            .filter(|k| !k.is_kernel)
            .count()
    );
}
