//! Regenerate **Table 2** — accuracy of the performance prediction
//! framework: min/max absolute error between interpreted and measured
//! (simulated-machine) times over the full problem-size × system-size sweep.
//!
//! Usage: `table2 [--quick] [--runs R] [--max-size S]`

use hpf_report::experiments::{table2, table2_text, SweepConfig};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let mut cfg = if args.iter().any(|a| a == "--quick") {
        SweepConfig::quick()
    } else {
        SweepConfig::default()
    };
    if let Some(i) = args.iter().position(|a| a == "--runs") {
        cfg.runs = args
            .get(i + 1)
            .and_then(|v| v.parse().ok())
            .unwrap_or(cfg.runs);
    }
    if let Some(i) = args.iter().position(|a| a == "--max-size") {
        cfg.max_size = args.get(i + 1).and_then(|v| v.parse().ok());
    }

    eprintln!(
        "sweeping {} proc counts, {} runs per measurement …",
        cfg.proc_counts.len(),
        cfg.runs
    );
    let t0 = std::time::Instant::now();
    let out = table2(&cfg);
    let (rows, samples) = (out.rows, out.samples);
    eprintln!(
        "{} samples in {:.1}s",
        samples.len(),
        t0.elapsed().as_secs_f64()
    );
    if !out.failures.is_empty() {
        eprintln!("{} configuration(s) failed:", out.failures.len());
        for f in &out.failures {
            eprintln!(
                "  {} — {} (after {} attempt(s))",
                f.label, f.failure, f.attempts
            );
        }
    }

    if let Some(i) = args.iter().position(|a| a == "--csv") {
        if let Some(path) = args.get(i + 1) {
            let _ = std::fs::write(path, hpf_report::csv::table2_csv(&rows));
            let _ = std::fs::write(
                format!("{path}.samples.csv"),
                hpf_report::csv::samples_csv(&samples),
            );
            eprintln!("wrote {path} (+ .samples.csv)");
        }
    }

    println!("Table 2: Accuracy of the Performance Prediction Framework");
    println!(
        "(measured = mean of {} simulated runs with load jitter)\n",
        cfg.runs
    );
    println!("{}", table2_text(&rows));

    let worst = rows.iter().map(|r| r.max_err_pct).fold(0.0f64, f64::max);
    let best = rows
        .iter()
        .map(|r| r.min_err_pct)
        .fold(f64::INFINITY, f64::min);
    println!("worst-case max error : {worst:.2}%  (paper: 18.6%, \"within 20%\")");
    println!("best-case  min error : {best:.3}%  (paper: 0.00%)");
    let kernel_max: f64 = rows
        .iter()
        .filter(|r| {
            kernels::kernel_by_name(&r.app)
                .map(|k| k.is_kernel)
                .unwrap_or(false)
        })
        .map(|r| r.max_err_pct)
        .fold(0.0, f64::max);
    let app_max: f64 = rows
        .iter()
        .filter(|r| {
            kernels::kernel_by_name(&r.app)
                .map(|k| !k.is_kernel)
                .unwrap_or(false)
        })
        .map(|r| r.max_err_pct)
        .fold(0.0, f64::max);
    println!("kernels max error    : {kernel_max:.2}%   applications max error: {app_max:.2}%");
}
