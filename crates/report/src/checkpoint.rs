//! Checkpoint/restart experiment: composes the parallel-I/O subsystem
//! (`hpf-io`) with the PR-1 [`FaultPlan`] machinery.
//!
//! Scenario: an out-of-core kernel runs to a node failure mid-sweep, the
//! survivors restart from the last durable checkpoint (a striped READ of
//! the checkpointed arrays) and re-execute the lost work on the *degraded*
//! machine. Each row sweeps the checkpoint count and reports the expected
//! recovery cost twice — once from the analytic interpreter's phase times,
//! once from the discrete-event simulator's — so checkpoint-interval policy
//! can be evaluated in the same predicted-vs-simulated frame as Table 2.

use crate::pipeline::{calibrated_machine, compile_source, PipelineError, PipelineStage};
use hpf_compiler::CompileOptions;
use hpf_io::{CheckpointSchedule, IoKind, IoPhase};
use ipsc_sim::{io_base_time, SimConfig, Simulator};
use machine::{ipsc860, FaultPlan, MachineModel};
use serde::Serialize;

/// One checkpoint-count row, with both measurement frames.
#[derive(Debug, Clone, Serialize)]
pub struct CheckpointRow {
    /// Checkpoints taken in a failure-free run.
    pub checkpoints: usize,
    /// Useful work between checkpoints, seconds (predicted frame).
    pub interval_s: f64,
    pub predicted_healthy_s: f64,
    /// Expected extra cost of one uniformly-placed failure (restart read
    /// plus lost work re-executed on the degraded machine).
    pub predicted_recovery_s: f64,
    pub predicted_total_s: f64,
    pub simulated_healthy_s: f64,
    pub simulated_recovery_s: f64,
    pub simulated_total_s: f64,
}

/// Configuration of one checkpoint/restart campaign.
#[derive(Debug, Clone)]
pub struct CheckpointExperimentConfig {
    /// Out-of-core kernel to run (must contain CHECKPOINT and READ phases).
    pub kernel: String,
    pub size: usize,
    pub procs: usize,
    /// Simulated runs per measurement.
    pub runs: usize,
    pub profile_steps: u64,
    /// The failure: after restart the survivors run with this plan's
    /// degradation (the I/O servers themselves stay healthy, matching
    /// `FaultPlan::degrade`).
    pub plan: FaultPlan,
    /// Checkpoint counts to sweep (0 = no checkpoints, full rerun).
    pub checkpoint_counts: Vec<usize>,
}

impl Default for CheckpointExperimentConfig {
    fn default() -> Self {
        CheckpointExperimentConfig {
            kernel: "Laplace OOC".into(),
            size: 64,
            procs: 8,
            runs: 50,
            profile_steps: 5_000_000,
            plan: FaultPlan::slow_node(1, 2.0),
            checkpoint_counts: vec![0, 1, 2, 4, 8],
        }
    }
}

/// The schedule for one frame (predicted or simulated phase times).
fn schedule(
    work_s: f64,
    checkpoints: usize,
    checkpoint_s: f64,
    restart_s: f64,
) -> CheckpointSchedule {
    let interval_s = if checkpoints == 0 {
        0.0
    } else {
        work_s / (checkpoints + 1) as f64
    };
    CheckpointSchedule {
        work_s,
        interval_s,
        checkpoint_s,
        restart_s,
    }
}

/// Expected recovery with the lost work re-executed on the degraded
/// machine: the restart read (I/O servers healthy) plus the expected lost
/// interval scaled by the plan's slowdown ratio. Strictly monotone in the
/// schedule's interval for any ratio ≥ 0 — the composition property the
/// tests pin.
fn degraded_recovery_s(s: &CheckpointSchedule, degrade_ratio: f64) -> f64 {
    let lost = if s.interval_s <= 0.0 {
        s.work_s / 2.0
    } else {
        s.interval_s.min(s.work_s) / 2.0
    };
    s.restart_s + lost * degrade_ratio
}

/// Run the campaign: one row per checkpoint count.
pub fn checkpoint_experiment(
    cfg: &CheckpointExperimentConfig,
) -> Result<Vec<CheckpointRow>, PipelineError> {
    let kernel = kernels::kernel_by_name(&cfg.kernel).ok_or_else(|| {
        PipelineError::new(
            PipelineStage::Sweep,
            format!("unknown kernel {:?}", cfg.kernel),
        )
    })?;
    let src = kernel.source(cfg.size, cfg.procs);
    let (analyzed, spmd) = compile_source(
        &src,
        cfg.procs,
        &Default::default(),
        &CompileOptions {
            nodes: cfg.procs,
            ..Default::default()
        },
    )?;

    // The restart read and per-checkpoint cost come from the kernel's own
    // I/O phases — the same descriptors both pricing models see.
    let phases = spmd.io_phases();
    let read = phase_of(&phases, IoKind::Read).ok_or_else(|| {
        PipelineError::new(
            PipelineStage::Io,
            format!("{} has no READ phase", cfg.kernel),
        )
    })?;
    let ckpt = phase_of(&phases, IoKind::Checkpoint).ok_or_else(|| {
        PipelineError::new(
            PipelineStage::Io,
            format!("{} has no CHECKPOINT phase", cfg.kernel),
        )
    })?;

    let profile = hpf_eval::run_with_limit(&analyzed, cfg.profile_steps)
        .ok()
        .map(|o| o.profile);
    let aag = appgraph::build_aag(&spmd);

    // Predicted frame: analytic engine on the calibrated machine, healthy
    // and degraded. Work is the non-I/O share of the prediction.
    let healthy = calibrated_machine(cfg.procs);
    let degraded = healthy.degrade(&cfg.plan);
    let (work_p, ckpt_p, restart_p) = predicted_frame(&healthy, &aag, ckpt, read);
    let (work_p_deg, _, _) = predicted_frame(&degraded, &aag, ckpt, read);
    let ratio_p = if work_p > 0.0 {
        work_p_deg / work_p
    } else {
        1.0
    };

    // Simulated frame: the DES, healthy and with the plan injected.
    let raw = ipsc860(cfg.procs);
    let sim = Simulator::with_config(
        &raw,
        SimConfig {
            runs: cfg.runs,
            ..Default::default()
        },
    );
    let meas = sim.simulate(&spmd, profile.as_ref());
    let work_s = (meas.mean - meas.io).max(0.0);
    let sim_deg = Simulator::with_config(
        &raw,
        SimConfig {
            runs: cfg.runs,
            faults: cfg.plan.clone(),
            ..Default::default()
        },
    );
    let meas_deg = sim_deg.simulate(&spmd, profile.as_ref());
    let work_s_deg = (meas_deg.mean - meas_deg.io).max(0.0);
    let ratio_s = if work_s > 0.0 {
        work_s_deg / work_s
    } else {
        1.0
    };
    let ckpt_s = io_base_time(&raw, ckpt);
    let restart_s = io_base_time(&raw, read);

    let mut rows = Vec::new();
    for &k in &cfg.checkpoint_counts {
        let sp = schedule(work_p, k, ckpt_p, restart_p);
        let ss = schedule(work_s, k, ckpt_s, restart_s);
        let rec_p = degraded_recovery_s(&sp, ratio_p);
        let rec_s = degraded_recovery_s(&ss, ratio_s);
        rows.push(CheckpointRow {
            checkpoints: k,
            interval_s: sp.interval_s,
            predicted_healthy_s: sp.healthy_run_s(),
            predicted_recovery_s: rec_p,
            predicted_total_s: sp.healthy_run_s() + rec_p,
            simulated_healthy_s: ss.healthy_run_s(),
            simulated_recovery_s: rec_s,
            simulated_total_s: ss.healthy_run_s() + rec_s,
        });
    }
    Ok(rows)
}

fn phase_of<'a>(phases: &[&'a IoPhase], kind: IoKind) -> Option<&'a IoPhase> {
    phases.iter().find(|p| p.kind == kind).copied()
}

fn predicted_frame(
    machine: &MachineModel,
    aag: &appgraph::Aag,
    ckpt: &IoPhase,
    read: &IoPhase,
) -> (f64, f64, f64) {
    let engine = interp::InterpretationEngine::new(machine);
    let p = engine.interpret(aag);
    let work = (p.total.time() - p.total.io).max(0.0);
    (
        work,
        hpf_io::phase_time_on(machine, ckpt),
        hpf_io::phase_time_on(machine, read),
    )
}

/// Render the campaign as a text table.
pub fn checkpoint_table_text(cfg: &CheckpointExperimentConfig, rows: &[CheckpointRow]) -> String {
    let mut out = String::new();
    out.push_str(
        "Ckpts  Interval     Pred healthy  Pred recovery  Pred total   Sim healthy   Sim recovery  Sim total\n",
    );
    for r in rows {
        out.push_str(&format!(
            "{:>5}  {:>8.3}ms  {:>10.3}ms  {:>11.3}ms  {:>8.3}ms  {:>10.3}ms  {:>10.3}ms  {:>7.3}ms\n",
            r.checkpoints,
            r.interval_s * 1e3,
            r.predicted_healthy_s * 1e3,
            r.predicted_recovery_s * 1e3,
            r.predicted_total_s * 1e3,
            r.simulated_healthy_s * 1e3,
            r.simulated_recovery_s * 1e3,
            r.simulated_total_s * 1e3,
        ));
    }
    out.push_str(&format!(
        "({} n={} p={}, plan {}, {} simulated runs)\n",
        cfg.kernel, cfg.size, cfg.procs, cfg.plan.name, cfg.runs
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_cfg() -> CheckpointExperimentConfig {
        CheckpointExperimentConfig {
            size: 32,
            procs: 4,
            runs: 20,
            ..Default::default()
        }
    }

    #[test]
    fn recovery_completes_and_is_monotone_in_interval() {
        // The FaultPlan × checkpoint composition property: recovery is
        // finite and positive, and grows (weakly) as checkpoints get
        // sparser — i.e. it is monotone in the checkpoint interval.
        let cfg = quick_cfg();
        let rows = checkpoint_experiment(&cfg).unwrap();
        assert_eq!(rows.len(), cfg.checkpoint_counts.len());
        // Sort by interval (count 0 means "no checkpoints" = the largest
        // effective interval, the whole run).
        let mut by_interval: Vec<&CheckpointRow> = rows.iter().collect();
        by_interval.sort_by(|a, b| {
            let ia = if a.checkpoints == 0 {
                f64::MAX
            } else {
                a.interval_s
            };
            let ib = if b.checkpoints == 0 {
                f64::MAX
            } else {
                b.interval_s
            };
            ia.partial_cmp(&ib).unwrap()
        });
        for w in by_interval.windows(2) {
            assert!(
                w[1].predicted_recovery_s >= w[0].predicted_recovery_s,
                "predicted recovery not monotone: {:?} vs {:?}",
                w[0],
                w[1]
            );
            assert!(
                w[1].simulated_recovery_s >= w[0].simulated_recovery_s,
                "simulated recovery not monotone: {:?} vs {:?}",
                w[0],
                w[1]
            );
        }
        for r in &rows {
            assert!(r.predicted_recovery_s.is_finite() && r.predicted_recovery_s > 0.0);
            assert!(r.simulated_recovery_s.is_finite() && r.simulated_recovery_s > 0.0);
            assert!(r.predicted_total_s > r.predicted_healthy_s);
            assert!(r.simulated_total_s > r.simulated_healthy_s);
        }
    }

    #[test]
    fn campaign_is_deterministic() {
        let cfg = quick_cfg();
        let a = checkpoint_experiment(&cfg).unwrap();
        let b = checkpoint_experiment(&cfg).unwrap();
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.predicted_total_s.to_bits(), y.predicted_total_s.to_bits());
            assert_eq!(x.simulated_total_s.to_bits(), y.simulated_total_s.to_bits());
        }
    }
}
