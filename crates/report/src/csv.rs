//! Plain-CSV export of experiment data (no external dependencies): lets
//! downstream users regenerate the paper's plots with any plotting tool.

use crate::experiments::{AccuracySample, LaplacePoint, PhaseProfile, Table2Row};
use std::fmt::Write as _;

/// Escape one CSV field.
fn field(s: &str) -> String {
    if s.contains([',', '"', '\n']) {
        format!("\"{}\"", s.replace('"', "\"\""))
    } else {
        s.to_string()
    }
}

/// Render Table-2 rows as CSV.
pub fn table2_csv(rows: &[Table2Row]) -> String {
    let mut out =
        String::from("app,size_min,size_max,procs_min,procs_max,min_err_pct,max_err_pct,samples\n");
    for r in rows {
        let _ = writeln!(
            out,
            "{},{},{},{},{},{:.4},{:.4},{}",
            field(&r.app),
            r.sizes.0,
            r.sizes.1,
            r.procs.0,
            r.procs.1,
            r.min_err_pct,
            r.max_err_pct,
            r.samples
        );
    }
    out
}

/// Render raw accuracy samples as CSV.
pub fn samples_csv(samples: &[AccuracySample]) -> String {
    let mut out =
        String::from("app,size,procs,predicted_s,measured_s,measured_std_s,abs_error_pct\n");
    for s in samples {
        let _ = writeln!(
            out,
            "{},{},{},{:.9},{:.9},{:.9},{:.4}",
            field(&s.app),
            s.size,
            s.procs,
            s.predicted_s,
            s.measured_s,
            s.measured_std_s,
            s.abs_error_pct
        );
    }
    out
}

/// Render Figure-4/5 points as CSV.
pub fn laplace_csv(points: &[LaplacePoint]) -> String {
    let mut out = String::from("dist,procs,size,estimated_s,measured_s\n");
    for p in points {
        let _ = writeln!(
            out,
            "{},{},{},{:.9},{:.9}",
            field(&p.dist),
            p.procs,
            p.size,
            p.estimated_s,
            p.measured_s
        );
    }
    out
}

/// Render Figure-7 phase profiles as CSV.
pub fn phases_csv(phases: &[PhaseProfile]) -> String {
    let mut out = String::from("phase,comp_us,comm_us,overhead_us\n");
    for p in phases {
        let _ = writeln!(
            out,
            "{},{:.3},{:.3},{:.3}",
            field(&p.phase),
            p.comp_us,
            p.comm_us,
            p.overhead_us
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::{AccuracySample, Table2Row};

    #[test]
    fn table2_csv_shape() {
        let rows = vec![Table2Row {
            app: "LFK 1".into(),
            sizes: (128, 4096),
            procs: (1, 8),
            min_err_pct: 1.5,
            max_err_pct: 12.25,
            samples: 24,
        }];
        let csv = table2_csv(&rows);
        let mut lines = csv.lines();
        assert!(lines.next().unwrap().starts_with("app,size_min"));
        assert_eq!(
            lines.next().unwrap(),
            "LFK 1,128,4096,1,8,1.5000,12.2500,24"
        );
    }

    #[test]
    fn fields_with_commas_are_quoted() {
        let samples = vec![AccuracySample {
            app: "Laplace (Blk,Blk)".into(),
            size: 64,
            procs: 4,
            predicted_s: 0.1,
            measured_s: 0.11,
            measured_std_s: 0.001,
            abs_error_pct: 9.09,
        }];
        let csv = samples_csv(&samples);
        assert!(csv.contains("\"Laplace (Blk,Blk)\""), "{csv}");
    }

    #[test]
    fn quotes_are_doubled() {
        assert_eq!(field("a\"b,c"), "\"a\"\"b,c\"");
        assert_eq!(field("plain"), "plain");
    }
}
