//! Experiment drivers for the paper's tables and figures.

use crate::harness::{run_batch, HarnessConfig, JobFailure, SweepFailure};
use crate::pipeline::{calibrated_machine_for, compile_source, machine_params, PredictOptions};
use crate::sweep::SweepSession;
use hpf_compiler::{CompileOptions, SpmdProgram};
use hpf_eval::ExecutionProfile;
use interp::{InterpOptions, InterpretationEngine};
use ipsc_sim::{SimConfig, Simulator};
use kernels::{all_kernels, Kernel, KernelKind, LaplaceDist};
use serde::Serialize;
use std::collections::HashMap;
use std::sync::Arc;

/// One (application, size, procs) accuracy sample.
#[derive(Debug, Clone, Serialize)]
pub struct AccuracySample {
    pub app: String,
    pub size: usize,
    pub procs: usize,
    pub predicted_s: f64,
    pub measured_s: f64,
    pub measured_std_s: f64,
    /// |predicted − measured| / measured, percent.
    pub abs_error_pct: f64,
}

/// One row of Table 2.
#[derive(Debug, Clone, Serialize)]
pub struct Table2Row {
    pub app: String,
    pub sizes: (usize, usize),
    pub procs: (usize, usize),
    pub min_err_pct: f64,
    pub max_err_pct: f64,
    pub samples: usize,
}

/// Sweep limits for the Table 2 reproduction. The full paper sweep is the
/// default; `quick()` trims sizes for CI-speed runs.
#[derive(Debug, Clone)]
pub struct SweepConfig {
    pub proc_counts: Vec<usize>,
    /// Cap on problem size (None = the kernel's own range).
    pub max_size: Option<usize>,
    /// Simulated runs per measurement (paper: 1000).
    pub runs: usize,
    /// Step budget for the functional-interpreter profile; configs whose
    /// execution exceeds it fall back to static hints.
    pub profile_steps: u64,
    /// Per-configuration isolation limits (timeout, retries).
    pub harness: HarnessConfig,
    /// Compile each kernel once per session and re-bind it per sweep point
    /// (the [`SweepSession`] fast path). `false` regenerates and recompiles
    /// source from scratch at every point — the pre-session behaviour, kept
    /// for the bit-identity cross-check.
    pub share_artifacts: bool,
    /// Registered machine backend the sweep predicts and simulates on
    /// (see `hpf_machines::machine_names`). Defaults to the paper's
    /// iPSC/860.
    pub machine: String,
}

impl Default for SweepConfig {
    fn default() -> Self {
        SweepConfig {
            proc_counts: vec![1, 2, 4, 8],
            max_size: None,
            runs: 1000,
            profile_steps: 40_000_000,
            harness: HarnessConfig::default(),
            share_artifacts: true,
            machine: hpf_machines::DEFAULT_MACHINE.to_string(),
        }
    }
}

impl SweepConfig {
    /// A trimmed sweep for tests / smoke runs.
    pub fn quick() -> Self {
        SweepConfig {
            proc_counts: vec![1, 4],
            max_size: Some(512),
            runs: 50,
            profile_steps: 5_000_000,
            harness: HarnessConfig {
                timeout: Some(std::time::Duration::from_secs(60)),
                retries: 0,
            },
            share_artifacts: true,
            machine: hpf_machines::DEFAULT_MACHINE.to_string(),
        }
    }
}

/// Analytic prediction and simulated measurement of one SPMD artifact —
/// the point where the interpretive and measurement paths provably operate
/// on the *same* compiled program. Both [`accuracy_sample`] (from-scratch)
/// and [`SweepSession::evaluate`] (compile-once) funnel through here.
pub fn sample_from_artifact(
    app: &str,
    spmd: &SpmdProgram,
    profile: Option<&ExecutionProfile>,
    size: usize,
    procs: usize,
    runs: usize,
) -> AccuracySample {
    sample_from_artifact_on(
        app,
        spmd,
        profile,
        size,
        procs,
        runs,
        hpf_machines::DEFAULT_MACHINE,
    )
    .expect("the default machine is always registered")
}

/// [`sample_from_artifact`] generalised over the machine registry: predict
/// on the named backend's calibrated model and simulate on its raw
/// parameter tables. The default machine takes exactly the historical
/// code path (same calibration memo, same `ipsc860` constructor), so
/// existing sweeps stay bit-identical.
#[allow(clippy::too_many_arguments)]
pub fn sample_from_artifact_on(
    app: &str,
    spmd: &SpmdProgram,
    profile: Option<&ExecutionProfile>,
    size: usize,
    procs: usize,
    runs: usize,
    machine_name: &str,
) -> Result<AccuracySample, crate::PipelineError> {
    let pred = {
        let _span = hpf_trace::span("predict");
        let machine = {
            let _s = hpf_trace::span("calibrate");
            calibrated_machine_for(machine_name, procs)?
        };
        let aag = appgraph::build_aag(spmd);
        let engine = InterpretationEngine::with_options(&machine, InterpOptions::default());
        engine.interpret(&aag)
    };

    let machine = machine_params(machine_name, procs)?;
    let sim = Simulator::with_config(
        &machine,
        SimConfig {
            runs,
            ..Default::default()
        },
    );
    let meas = sim.simulate(spmd, profile);

    let err = if meas.mean > 0.0 {
        100.0 * (pred.total_seconds() - meas.mean).abs() / meas.mean
    } else {
        0.0
    };
    Ok(AccuracySample {
        app: app.to_string(),
        size,
        procs,
        predicted_s: pred.total_seconds(),
        measured_s: meas.mean,
        measured_std_s: meas.std,
        abs_error_pct: err,
    })
}

/// Run one accuracy sample from scratch: generate source, compile once,
/// profile, then predict *and* simulate the same compiled artifact.
pub fn accuracy_sample(
    kernel: &Kernel,
    size: usize,
    procs: usize,
    cfg: &SweepConfig,
) -> Result<AccuracySample, crate::PipelineError> {
    let src = kernel.source(size, procs);

    let (analyzed, spmd) = compile_source(
        &src,
        procs,
        &Default::default(),
        &CompileOptions {
            nodes: procs,
            ..Default::default()
        },
    )?;
    let profile = {
        let _s = hpf_trace::span("profile");
        hpf_eval::run_with_limit(&analyzed, cfg.profile_steps)
            .ok()
            .map(|o| o.profile)
    };
    sample_from_artifact_on(
        kernel.name,
        &spmd,
        profile.as_ref(),
        size,
        procs,
        cfg.runs,
        &cfg.machine,
    )
}

/// Everything the Table 2 sweep produced: the aggregated rows, every
/// individual sample, and any configurations that failed (panicked, timed
/// out, or errored) without stopping the rest of the campaign.
#[derive(Debug, Clone)]
pub struct Table2Output {
    pub rows: Vec<Table2Row>,
    pub samples: Vec<AccuracySample>,
    pub failures: Vec<SweepFailure>,
}

/// Reproduce Table 2: per application, min/max absolute error over the
/// size × procs sweep. Configurations run in parallel worker threads; each
/// one is panic-isolated with a wall-clock timeout and bounded retries, so
/// one pathological configuration is reported in `failures` instead of
/// aborting the sweep.
pub fn table2(cfg: &SweepConfig) -> Table2Output {
    // Compile each kernel once per session: the workers share the artifact
    // behind an Arc and only re-bind (N, P) per point. A kernel whose
    // canonical instance fails to parse falls back to the from-scratch
    // path, which reports the error per-point as before.
    let sessions: HashMap<&'static str, Arc<SweepSession>> = if cfg.share_artifacts {
        all_kernels()
            .iter()
            .filter_map(|k| {
                SweepSession::new(k, cfg)
                    .ok()
                    .map(|s| (k.name, Arc::new(s)))
            })
            .collect()
    } else {
        HashMap::new()
    };

    // Build the work list.
    let mut work: Vec<(Kernel, usize, usize)> = Vec::new();
    for k in all_kernels() {
        for size in k.sweep_sizes() {
            if let Some(cap) = cfg.max_size {
                if size > cap {
                    continue;
                }
            }
            for &p in &cfg.proc_counts {
                work.push((k.clone(), size, p));
            }
        }
    }

    let hcfg = cfg.harness.clone();
    let jobs: Vec<(String, _)> = work
        .into_iter()
        .map(|(k, size, p)| {
            let cfg = cfg.clone();
            let session = sessions.get(k.name).cloned();
            let label = format!("{} n={size} p={p}", k.name);
            let inner_label = label.clone();
            let job = move || {
                let result = match &session {
                    Some(s) => s.evaluate(size, p),
                    None => accuracy_sample(&k, size, p, &cfg),
                };
                result.map_err(|e| (inner_label.clone(), e.to_string()))
            };
            (label, job)
        })
        .collect();
    let (outcomes, mut failures) = run_batch(jobs, &hcfg);

    let mut samples = Vec::new();
    for outcome in outcomes {
        match outcome {
            Ok(sample) => samples.push(sample),
            Err((label, msg)) => failures.push(SweepFailure {
                label,
                failure: JobFailure::Errored(msg),
                attempts: 1,
            }),
        }
    }
    samples.sort_by(|a, b| (&a.app, a.size, a.procs).cmp(&(&b.app, b.size, b.procs)));

    // Aggregate per application.
    let mut rows = Vec::new();
    for k in all_kernels() {
        let ss: Vec<&AccuracySample> = samples.iter().filter(|s| s.app == k.name).collect();
        if ss.is_empty() {
            continue;
        }
        let min_err = ss
            .iter()
            .map(|s| s.abs_error_pct)
            .fold(f64::INFINITY, f64::min);
        let max_err = ss.iter().map(|s| s.abs_error_pct).fold(0.0, f64::max);
        rows.push(Table2Row {
            app: k.name.to_string(),
            sizes: (
                ss.iter().map(|s| s.size).min().unwrap_or(0),
                ss.iter().map(|s| s.size).max().unwrap_or(0),
            ),
            procs: (
                ss.iter().map(|s| s.procs).min().unwrap_or(0),
                ss.iter().map(|s| s.procs).max().unwrap_or(0),
            ),
            min_err_pct: min_err,
            max_err_pct: max_err,
            samples: ss.len(),
        });
    }
    Table2Output {
        rows,
        samples,
        failures,
    }
}

/// Render Table 2 as text.
pub fn table2_text(rows: &[Table2Row]) -> String {
    let mut out = String::new();
    out.push_str(
        "Name               Problem Sizes    System Size   Min Abs Error   Max Abs Error\n",
    );
    out.push_str("                   (data elements)  (# procs)     (%)             (%)\n");
    for r in rows {
        out.push_str(&format!(
            "{:<18} {:>6} - {:<7} {} - {:<9} {:>6.2}%         {:>6.2}%\n",
            r.app, r.sizes.0, r.sizes.1, r.procs.0, r.procs.1, r.min_err_pct, r.max_err_pct
        ));
    }
    out
}

/// One point of the Figures 4/5 Laplace curves.
#[derive(Debug, Clone, Serialize)]
pub struct LaplacePoint {
    pub dist: String,
    pub procs: usize,
    pub size: usize,
    pub estimated_s: f64,
    pub measured_s: f64,
}

/// Reproduce the Figure 4/5 data: estimated and measured execution time of
/// the Laplace solver for the three distributions, sizes stepping by 16.
pub fn laplace_curves(procs: usize, max_size: usize, runs: usize) -> Vec<LaplacePoint> {
    let mut pts = Vec::new();
    for dist in [
        LaplaceDist::BlockBlock,
        LaplaceDist::BlockStar,
        LaplaceDist::StarBlock,
    ] {
        let kernel = Kernel {
            kind: KernelKind::Laplace(dist),
            name: "Laplace",
            description: "",
            is_kernel: false,
            size_range: (16, max_size),
        };
        let cfg = SweepConfig {
            runs,
            ..Default::default()
        };
        // One compile-once session per distribution; the curve only
        // re-binds N at each size step.
        let session = SweepSession::new(&kernel, &cfg).ok();
        let mut size = 16;
        while size <= max_size {
            let sample = match &session {
                Some(s) => s.evaluate(size, procs),
                None => accuracy_sample(&kernel, size, procs, &cfg),
            };
            if let Ok(s) = sample {
                pts.push(LaplacePoint {
                    dist: dist.label().to_string(),
                    procs,
                    size,
                    estimated_s: s.predicted_s,
                    measured_s: s.measured_s,
                });
            }
            size += 16;
        }
    }
    pts
}

/// Figure 3: ASCII rendering of the three Laplace data distributions on
/// `procs` processors (ownership of an `n × n` template).
pub fn figure3(n: usize, procs: usize) -> String {
    let mut out = String::new();
    for dist in [
        LaplaceDist::BlockBlock,
        LaplaceDist::BlockStar,
        LaplaceDist::StarBlock,
    ] {
        let kernel = Kernel {
            kind: KernelKind::Laplace(dist),
            name: "Laplace",
            description: "",
            is_kernel: false,
            size_range: (n, n),
        };
        let src = kernel.source(n, procs);
        let (_, spmd) = compile_source(
            &src,
            procs,
            &Default::default(),
            &CompileOptions {
                nodes: procs,
                ..Default::default()
            },
        )
        .expect("laplace compiles");
        let u = spmd.dist.get("U").expect("U mapped");
        out.push_str(&format!("{}\n", dist.label()));
        for i in 1..=n as i64 {
            out.push_str("  ");
            for j in 1..=n as i64 {
                let mut coords = vec![0i64; spmd.grid.extents.len()];
                for (d, &idx) in [i, j].iter().enumerate() {
                    if let Some(pd) = u.dims[d].pdim() {
                        coords[pd] = u.owner_coord(d, idx);
                    }
                }
                let owner = spmd.grid.node_of(&coords);
                out.push_str(&format!("{owner}"));
            }
            out.push('\n');
        }
        out.push('\n');
    }
    out
}

/// Figure 7: per-phase comp/comm/overhead profile of the financial model.
#[derive(Debug, Clone, Serialize)]
pub struct PhaseProfile {
    pub phase: String,
    pub comp_us: f64,
    pub comm_us: f64,
    pub overhead_us: f64,
}

/// Reproduce Figure 7 (stock option pricing, per-phase breakdown).
pub fn figure7(size: usize, procs: usize) -> Vec<PhaseProfile> {
    let kernel = kernels::kernel_by_name("Financial").expect("financial kernel");
    let src = kernel.source(size, procs);
    let (pred, aag, _) =
        crate::predict_source_full(&src, &PredictOptions::with_nodes(procs)).expect("predicts");

    // Phase 1 = the backward-induction DO loop (creates the price lattice,
    // shift per step); Phase 2 = the final call-price forall (local).
    let do_line = src
        .lines()
        .position(|l| l.trim_start().starts_with("DO K"))
        .expect("phase 1 loop") as u32
        + 1;
    let phase2_line = src
        .lines()
        .enumerate()
        .filter(|(_, l)| l.trim_start().starts_with("FORALL (I = 1:N) C(I)"))
        .map(|(i, _)| i as u32 + 1)
        .last()
        .expect("phase 2 forall");

    let p1 = interp::query_line(&pred, &aag, do_line);
    let p2 = interp::query_line(&pred, &aag, phase2_line);
    vec![
        PhaseProfile {
            phase: "Phase 1 (create price lattice)".into(),
            comp_us: p1.comp * 1e6,
            comm_us: p1.comm * 1e6,
            overhead_us: p1.overhead * 1e6,
        },
        PhaseProfile {
            phase: "Phase 2 (compute call prices)".into(),
            comp_us: p2.comp * 1e6,
            comm_us: p2.comm * 1e6,
            overhead_us: p2.overhead * 1e6,
        },
    ]
}

/// Figure 2: the abstraction of the paper's forall example, shown as the
/// Phase-1 SPMD structure and the Phase-2 sub-AAG.
pub fn figure2() -> (String, String) {
    let src = "
PROGRAM FIG2
INTEGER, PARAMETER :: N = 64
REAL X(N), V(N), G(N)
!HPF$ PROCESSORS P(4)
!HPF$ TEMPLATE T(N)
!HPF$ ALIGN X(I) WITH T(I)
!HPF$ ALIGN V(I) WITH T(I)
!HPF$ ALIGN G(I) WITH T(I)
!HPF$ DISTRIBUTE T(BLOCK) ONTO P
FORALL (K=2:N-1, V(K) .GT. 0.0) X(K+1) = X(K) + G(K)
END
";
    let (_, spmd) = compile_source(
        src,
        4,
        &Default::default(),
        &CompileOptions {
            nodes: 4,
            ..Default::default()
        },
    )
    .expect("figure 2 compiles");
    let aag = appgraph::build_aag(&spmd);
    (spmd.outline(), aag.outline())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_accuracy_sample_in_band() {
        let k = kernels::kernel_by_name("PI").unwrap();
        let s = accuracy_sample(&k, 512, 4, &SweepConfig::quick()).unwrap();
        assert!(s.predicted_s > 0.0 && s.measured_s > 0.0);
        assert!(s.abs_error_pct < 25.0, "error {:.1}%", s.abs_error_pct);
    }

    /// The whole trimmed Table 2 sweep must be bit-identical between the
    /// compile-once session path and the from-scratch path — every
    /// predicted and measured field, compared by `to_bits`.
    #[test]
    fn table2_shared_artifacts_bit_identical_to_scratch() {
        let shared_cfg = SweepConfig {
            proc_counts: vec![1, 4],
            max_size: Some(128),
            runs: 5,
            profile_steps: 300_000,
            harness: HarnessConfig {
                timeout: Some(std::time::Duration::from_secs(120)),
                retries: 0,
            },
            share_artifacts: true,
            machine: hpf_machines::DEFAULT_MACHINE.to_string(),
        };
        let scratch_cfg = SweepConfig {
            share_artifacts: false,
            ..shared_cfg.clone()
        };

        let shared = table2(&shared_cfg);
        let scratch = table2(&scratch_cfg);

        assert!(shared.failures.is_empty(), "{:?}", shared.failures);
        assert!(scratch.failures.is_empty(), "{:?}", scratch.failures);
        assert_eq!(shared.samples.len(), scratch.samples.len());
        for (a, b) in shared.samples.iter().zip(&scratch.samples) {
            assert_eq!(a.app, b.app);
            assert_eq!((a.size, a.procs), (b.size, b.procs));
            let ctx = format!("{} n={} p={}", a.app, a.size, a.procs);
            assert_eq!(
                a.predicted_s.to_bits(),
                b.predicted_s.to_bits(),
                "predicted_s drifted: {ctx}"
            );
            assert_eq!(
                a.measured_s.to_bits(),
                b.measured_s.to_bits(),
                "measured_s drifted: {ctx}"
            );
            assert_eq!(
                a.measured_std_s.to_bits(),
                b.measured_std_s.to_bits(),
                "measured_std_s drifted: {ctx}"
            );
            assert_eq!(
                a.abs_error_pct.to_bits(),
                b.abs_error_pct.to_bits(),
                "abs_error_pct drifted: {ctx}"
            );
        }
    }

    #[test]
    fn figure3_partitions_every_cell() {
        let f = figure3(8, 4);
        assert!(f.contains("(Blk,*)"));
        // (Blk,*): first row of the grid owned by 0, last by 3
        let sect: Vec<&str> = f.split("(Blk,*)").nth(1).unwrap().lines().collect();
        assert!(sect[1].trim().chars().all(|c| c == '0'));
        assert!(sect[8].trim().chars().all(|c| c == '3'));
    }

    #[test]
    fn figure2_shapes() {
        let (spmd, aag) = figure2();
        assert!(spmd.contains("Comm"), "{spmd}");
        assert!(spmd.contains("Comp"), "{spmd}");
        assert!(aag.contains("IterD"), "{aag}");
        assert!(aag.contains("CondtD"), "{aag}");
    }

    #[test]
    fn figure7_phase1_communicates_phase2_does_not() {
        let phases = figure7(256, 4);
        assert_eq!(phases.len(), 2);
        assert!(phases[0].comm_us > 0.0, "phase 1 shifts: {phases:?}");
        assert_eq!(phases[1].comm_us, 0.0, "phase 2 is local: {phases:?}");
    }

    #[test]
    fn laplace_curves_monotone_in_size() {
        let pts = laplace_curves(4, 64, 20);
        let bs: Vec<&LaplacePoint> = pts.iter().filter(|p| p.dist == "(Blk,*)").collect();
        assert!(bs.len() >= 2);
        assert!(bs.last().unwrap().measured_s > bs[0].measured_s);
        assert!(bs.last().unwrap().estimated_s > bs[0].estimated_s);
    }
}
