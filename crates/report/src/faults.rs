//! The fault-injection experiment behind `report --bin faults`: how well
//! does the *degraded-mode* interpretation engine predict execution time
//! when the simulated iPSC/860 is running with injected faults?
//!
//! For each [`FaultPlan`] the experiment produces one row comparing
//!
//! * **predicted** — the analytic prediction against the calibrated machine
//!   degraded by the same plan ([`machine::MachineModel::degrade`]), and
//! * **measured** — the mean of the discrete-event simulation with the plan
//!   injected at the network level ([`ipsc_sim::SimConfig::faults`]).
//!
//! The zero-fault plan runs the *identical* code path as the baseline
//! Table 2 sweep (same profile, same seeds, same caches), so its row
//! reproduces the healthy numbers bit-for-bit — the control that anchors
//! every degraded row.

use crate::pipeline::{calibrated_machine, compile_source, PipelineError, PredictOptions};
use hpf_compiler::CompileOptions;
use ipsc_sim::{SimConfig, Simulator};
use kernels::Kernel;
use machine::{ipsc860, FaultPlan};
use serde::Serialize;

/// One (fault plan) row of the predicted-vs-simulated comparison.
#[derive(Debug, Clone, Serialize)]
pub struct FaultRow {
    pub plan: String,
    pub predicted_s: f64,
    pub measured_s: f64,
    pub measured_std_s: f64,
    /// |predicted − measured| / measured, percent.
    pub abs_error_pct: f64,
    /// Fault events accumulated over all simulated runs.
    pub retries: u64,
    pub detours: u64,
    pub undeliverable: u64,
}

/// Configuration of one fault-injection campaign.
#[derive(Debug, Clone)]
pub struct FaultExperimentConfig {
    pub kernel: String,
    pub size: usize,
    pub procs: usize,
    /// Simulated runs per measurement.
    pub runs: usize,
    /// Step budget for the functional-interpreter profile.
    pub profile_steps: u64,
    pub plans: Vec<FaultPlan>,
}

impl Default for FaultExperimentConfig {
    fn default() -> Self {
        FaultExperimentConfig {
            kernel: "Laplace (Blk-X)".into(),
            size: 256,
            procs: 8,
            runs: 200,
            profile_steps: 5_000_000,
            plans: default_plans(),
        }
    }
}

/// The standard plan set: healthy control, one degraded link, one severed
/// link (forcing detours), one slow node, and a lossy network.
pub fn default_plans() -> Vec<FaultPlan> {
    vec![
        FaultPlan::none(),
        FaultPlan::degraded_link(0, 1, 4.0),
        FaultPlan::link_down(0, 2),
        FaultPlan::slow_node(1, 2.0),
        FaultPlan::lossy(0.05),
    ]
}

/// Run the campaign: one row per plan. The program is compiled and profiled
/// once; each plan then gets its own degraded prediction and its own
/// fault-injected simulation (deterministic for the fixed `SimConfig` seed
/// and the plan's own fault seed).
pub fn fault_experiment(cfg: &FaultExperimentConfig) -> Result<Vec<FaultRow>, PipelineError> {
    let kernel: Kernel = kernels::kernel_by_name(&cfg.kernel).ok_or_else(|| {
        PipelineError::new(
            crate::pipeline::PipelineStage::Sweep,
            format!("unknown kernel {:?}", cfg.kernel),
        )
    })?;
    let src = kernel.source(cfg.size, cfg.procs);

    let (analyzed, spmd) = compile_source(
        &src,
        cfg.procs,
        &Default::default(),
        &CompileOptions {
            nodes: cfg.procs,
            ..Default::default()
        },
    )?;
    let profile = hpf_eval::run_with_limit(&analyzed, cfg.profile_steps)
        .ok()
        .map(|o| o.profile);
    let aag = appgraph::build_aag(&spmd);

    let healthy_calibrated = calibrated_machine(cfg.procs);
    let healthy_machine = ipsc860(cfg.procs);
    let popts = PredictOptions::with_nodes(cfg.procs);

    let mut rows = Vec::new();
    for plan in &cfg.plans {
        // Predicted: the analytic engine against the degraded abstraction.
        let degraded = healthy_calibrated.degrade(plan);
        let engine = interp::InterpretationEngine::with_options(&degraded, popts.interp.clone());
        let predicted = engine.interpret(&aag).total_seconds();

        // Measured: the DES with the plan injected at the network level.
        let sim = Simulator::with_config(
            &healthy_machine,
            SimConfig {
                runs: cfg.runs,
                faults: plan.clone(),
                ..Default::default()
            },
        );
        let meas = sim.simulate(&spmd, profile.as_ref());

        let err = if meas.mean > 0.0 {
            100.0 * (predicted - meas.mean).abs() / meas.mean
        } else {
            0.0
        };
        rows.push(FaultRow {
            plan: plan.name.clone(),
            predicted_s: predicted,
            measured_s: meas.mean,
            measured_std_s: meas.std,
            abs_error_pct: err,
            retries: meas.fault_stats.retries,
            detours: meas.fault_stats.detours,
            undeliverable: meas.fault_stats.undeliverable,
        });
    }
    Ok(rows)
}

/// Render the campaign as a text table.
pub fn fault_table_text(cfg: &FaultExperimentConfig, rows: &[FaultRow]) -> String {
    let mut out = String::new();
    out.push_str("Fault plan                  Predicted    Simulated    (± std)      Err     Retries  Detours  Undeliv.\n");
    for r in rows {
        out.push_str(&format!(
            "{:<27} {:>9.3}ms  {:>9.3}ms  (±{:>6.3}ms)  {:>5.1}%  {:>7}  {:>7}  {:>7}\n",
            r.plan,
            r.predicted_s * 1e3,
            r.measured_s * 1e3,
            r.measured_std_s * 1e3,
            r.abs_error_pct,
            r.retries,
            r.detours,
            r.undeliverable,
        ));
    }
    out.push_str(&format!(
        "({} n={} p={}, {} simulated runs per plan)\n",
        cfg.kernel, cfg.size, cfg.procs, cfg.runs
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::{accuracy_sample, SweepConfig};

    fn quick_cfg() -> FaultExperimentConfig {
        FaultExperimentConfig {
            kernel: "PI".into(),
            size: 512,
            procs: 4,
            runs: 50,
            profile_steps: 5_000_000,
            plans: default_plans(),
        }
    }

    #[test]
    fn zero_fault_row_reproduces_baseline_exactly() {
        // The acceptance criterion: the "none" plan must reproduce the
        // healthy Table 2 numbers exactly (same code path, same seeds).
        let cfg = quick_cfg();
        let rows = fault_experiment(&cfg).unwrap();
        let none = &rows[0];
        assert_eq!(none.plan, "none");

        let k = kernels::kernel_by_name("PI").unwrap();
        let sweep = SweepConfig {
            runs: cfg.runs,
            profile_steps: cfg.profile_steps,
            ..SweepConfig::quick()
        };
        let baseline = accuracy_sample(&k, cfg.size, cfg.procs, &sweep).unwrap();
        assert_eq!(none.predicted_s.to_bits(), baseline.predicted_s.to_bits());
        assert_eq!(none.measured_s.to_bits(), baseline.measured_s.to_bits());
        assert_eq!(
            none.measured_std_s.to_bits(),
            baseline.measured_std_s.to_bits()
        );
        assert_eq!((none.retries, none.detours, none.undeliverable), (0, 0, 0));
    }

    #[test]
    fn campaign_is_deterministic_for_fixed_seed() {
        let cfg = quick_cfg();
        let a = fault_experiment(&cfg).unwrap();
        let b = fault_experiment(&cfg).unwrap();
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.plan, y.plan);
            assert_eq!(x.predicted_s.to_bits(), y.predicted_s.to_bits());
            assert_eq!(x.measured_s.to_bits(), y.measured_s.to_bits());
            assert_eq!(x.measured_std_s.to_bits(), y.measured_std_s.to_bits());
            assert_eq!(
                (x.retries, x.detours, x.undeliverable),
                (y.retries, y.detours, y.undeliverable)
            );
        }
    }

    #[test]
    fn faulty_plans_cost_more_and_are_tracked() {
        let cfg = quick_cfg();
        let rows = fault_experiment(&cfg).unwrap();
        let healthy = rows[0].measured_s;
        for r in &rows[1..] {
            assert!(
                r.measured_s > healthy,
                "{} should be slower than healthy ({} vs {healthy})",
                r.plan,
                r.measured_s
            );
            // Degraded predictions move in the same direction.
            assert!(
                r.predicted_s > rows[0].predicted_s,
                "{} prediction did not degrade",
                r.plan
            );
        }
        let lossy = rows.iter().find(|r| r.plan.starts_with("lossy")).unwrap();
        assert!(lossy.retries > 0, "lossy plan should record retries");
        let severed = rows
            .iter()
            .find(|r| r.plan.starts_with("link-down"))
            .unwrap();
        assert!(severed.detours > 0, "severed link should record detours");
    }
}
