//! Hardened sweep harness: panic isolation, wall-clock timeouts, and
//! bounded retries for experiment jobs.
//!
//! The Table 2 sweep runs hundreds of (kernel, size, procs) configurations;
//! one panicking or wedged configuration must not take down the whole
//! campaign. Each job runs on its own worker thread behind
//! `std::panic::catch_unwind`, a watchdog enforces a wall-clock budget, and
//! transient failures are retried a bounded number of times. Failures come
//! back as data ([`JobFailure`]), never as a crash of the harness itself.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc;
use std::sync::Mutex;
use std::time::Duration;

/// Execution limits for one isolated job.
#[derive(Debug, Clone)]
pub struct HarnessConfig {
    /// Wall-clock budget per attempt. `None` = unlimited.
    pub timeout: Option<Duration>,
    /// Extra attempts after the first failure (panic or timeout).
    pub retries: u32,
}

impl Default for HarnessConfig {
    fn default() -> Self {
        HarnessConfig {
            timeout: Some(Duration::from_secs(120)),
            retries: 1,
        }
    }
}

/// Why an isolated job did not produce a value.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JobFailure {
    /// The job panicked; payload is the panic message.
    Panicked(String),
    /// The job exceeded its wall-clock budget.
    TimedOut,
    /// The job ran to completion but returned an error.
    Errored(String),
}

impl std::fmt::Display for JobFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            JobFailure::Panicked(msg) => write!(f, "panicked: {msg}"),
            JobFailure::TimedOut => write!(f, "timed out"),
            JobFailure::Errored(msg) => write!(f, "error: {msg}"),
        }
    }
}

fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Run `job` in isolation: on a dedicated thread, behind `catch_unwind`,
/// with the configured timeout and retry budget. Returns the job's value or
/// the failure of the *last* attempt.
///
/// A timed-out attempt's thread cannot be killed — it is detached and its
/// eventual result discarded; the harness moves on. `job` must therefore be
/// `Clone`: each attempt gets its own copy.
pub fn run_isolated<T, F>(job: F, cfg: &HarnessConfig) -> Result<T, JobFailure>
where
    T: Send + 'static,
    F: Fn() -> T + Clone + Send + 'static,
{
    let mut last = JobFailure::TimedOut;
    hpf_trace::counter_add("harness.jobs", 1);
    for attempt in 0..=cfg.retries {
        if attempt > 0 {
            hpf_trace::counter_add("harness.retries", 1);
        }
        let started = std::time::Instant::now();
        let (tx, rx) = mpsc::channel();
        let j = job.clone();
        std::thread::spawn(move || {
            let outcome = catch_unwind(AssertUnwindSafe(j)).map_err(panic_message);
            // Receiver may have given up (timeout): ignore the send error.
            let _ = tx.send(outcome);
        });
        let received = match cfg.timeout {
            Some(t) => rx.recv_timeout(t).map_err(|_| JobFailure::TimedOut),
            None => rx.recv().map_err(|_| JobFailure::TimedOut),
        };
        hpf_trace::histogram_record("harness.job_seconds", started.elapsed().as_secs_f64());
        match received {
            Ok(Ok(v)) => return Ok(v),
            Ok(Err(msg)) => {
                hpf_trace::counter_add("harness.panics", 1);
                last = JobFailure::Panicked(msg);
            }
            Err(f) => {
                hpf_trace::counter_add("harness.timeouts", 1);
                last = f;
            }
        }
    }
    hpf_trace::counter_add("harness.failures", 1);
    Err(last)
}

/// One failed sweep job, identified by the caller's label.
#[derive(Debug, Clone)]
pub struct SweepFailure {
    pub label: String,
    pub failure: JobFailure,
    pub attempts: u32,
}

/// Run a batch of labelled jobs across worker threads, isolating each one.
/// All successes and all failures are returned; one bad job never stops the
/// rest of the batch (the panic-isolation contract of the sweep).
pub fn run_batch<T, F>(jobs: Vec<(String, F)>, cfg: &HarnessConfig) -> (Vec<T>, Vec<SweepFailure>)
where
    T: Send + 'static,
    F: Fn() -> T + Clone + Send + Sync + 'static,
{
    let results = Mutex::new(Vec::new());
    let failures = Mutex::new(Vec::new());
    let next = AtomicUsize::new(0);
    let workers = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
        .min(jobs.len().max(1));

    std::thread::scope(|s| {
        for _ in 0..workers {
            s.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= jobs.len() {
                    break;
                }
                let (label, job) = &jobs[i];
                let _job_span = hpf_trace::span("job");
                match run_isolated(job.clone(), cfg) {
                    Ok(v) => results.lock().unwrap_or_else(|e| e.into_inner()).push(v),
                    Err(f) => {
                        failures
                            .lock()
                            .unwrap_or_else(|e| e.into_inner())
                            .push(SweepFailure {
                                label: label.clone(),
                                failure: f,
                                attempts: cfg.retries + 1,
                            })
                    }
                }
            });
        }
    });
    (
        results.into_inner().unwrap_or_else(|e| e.into_inner()),
        failures.into_inner().unwrap_or_else(|e| e.into_inner()),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> HarnessConfig {
        HarnessConfig {
            timeout: Some(Duration::from_secs(5)),
            retries: 0,
        }
    }

    #[test]
    fn healthy_job_returns_value() {
        let r = run_isolated(|| 6 * 7, &quick());
        assert_eq!(r.unwrap(), 42);
    }

    #[test]
    fn panicking_job_is_contained() {
        let r: Result<i32, _> = run_isolated(|| panic!("deliberate test panic"), &quick());
        match r {
            Err(JobFailure::Panicked(msg)) => assert!(msg.contains("deliberate")),
            other => panic!("expected Panicked, got {other:?}"),
        }
    }

    #[test]
    fn wedged_job_times_out() {
        let cfg = HarnessConfig {
            timeout: Some(Duration::from_millis(50)),
            retries: 0,
        };
        let r: Result<(), _> = run_isolated(|| std::thread::sleep(Duration::from_secs(600)), &cfg);
        assert_eq!(r.unwrap_err(), JobFailure::TimedOut);
    }

    #[test]
    fn retries_are_bounded_and_counted() {
        // A job that always panics consumes exactly retries+1 attempts.
        static ATTEMPTS: AtomicUsize = AtomicUsize::new(0);
        let cfg = HarnessConfig {
            timeout: Some(Duration::from_secs(5)),
            retries: 2,
        };
        let r: Result<(), _> = run_isolated(
            || {
                ATTEMPTS.fetch_add(1, Ordering::SeqCst);
                panic!("always fails");
            },
            &cfg,
        );
        assert!(r.is_err());
        assert_eq!(ATTEMPTS.load(Ordering::SeqCst), 3);
    }

    #[test]
    fn wedged_first_attempt_recovers_on_retry() {
        // Timeout path + retry: attempt 0 wedges past the budget, attempt 1
        // returns promptly — the job as a whole must succeed.
        static ATTEMPTS: AtomicUsize = AtomicUsize::new(0);
        let cfg = HarnessConfig {
            timeout: Some(Duration::from_millis(80)),
            retries: 1,
        };
        let r = run_isolated(
            || {
                if ATTEMPTS.fetch_add(1, Ordering::SeqCst) == 0 {
                    std::thread::sleep(Duration::from_secs(600));
                }
                "recovered"
            },
            &cfg,
        );
        assert_eq!(r.unwrap(), "recovered");
        assert_eq!(ATTEMPTS.load(Ordering::SeqCst), 2);
    }

    #[test]
    fn timeout_exhaustion_reports_timed_out_not_panic() {
        // Every attempt wedges: the final failure must be TimedOut even
        // though earlier attempts also timed out (the last-attempt rule).
        let cfg = HarnessConfig {
            timeout: Some(Duration::from_millis(40)),
            retries: 2,
        };
        let r: Result<(), _> = run_isolated(|| std::thread::sleep(Duration::from_secs(600)), &cfg);
        assert_eq!(r.unwrap_err(), JobFailure::TimedOut);
    }

    #[test]
    fn timeout_path_is_observable_in_trace_metrics() {
        // The harness instrumentation: a timed-out attempt increments
        // `harness.timeouts`, its wall time lands in `harness.job_seconds`,
        // and the retry is counted. Deltas are used because the trace
        // registry is process-global.
        let _lock = crate::TRACE_TEST_LOCK
            .lock()
            .unwrap_or_else(|e| e.into_inner());
        hpf_trace::enable();
        let t0 = hpf_trace::counter_get("harness.timeouts");
        let r0 = hpf_trace::counter_get("harness.retries");
        let h0 = hpf_trace::histogram_snapshot("harness.job_seconds")
            .map(|h| h.count)
            .unwrap_or(0);
        let cfg = HarnessConfig {
            timeout: Some(Duration::from_millis(40)),
            retries: 1,
        };
        let r: Result<(), _> = run_isolated(|| std::thread::sleep(Duration::from_secs(600)), &cfg);
        hpf_trace::disable();
        assert!(r.is_err());
        // >= rather than ==: other harness tests may run (and time out)
        // concurrently inside the enabled window.
        assert!(
            hpf_trace::counter_get("harness.timeouts") - t0 >= 2,
            "both attempts"
        );
        assert!(hpf_trace::counter_get("harness.retries") - r0 >= 1);
        let h1 = hpf_trace::histogram_snapshot("harness.job_seconds").unwrap();
        assert!(h1.count - h0 >= 2, "one wall-time sample per attempt");
    }

    #[test]
    fn batch_survives_poison_job() {
        // The panic-isolation acceptance test: a deliberately panicking
        // experiment completes the remaining experiments and reports the
        // failure.
        let mut jobs = Vec::new();
        for i in 0..8usize {
            jobs.push((format!("job-{i}"), move || {
                if i == 3 {
                    panic!("poison experiment");
                }
                i * 10
            }));
        }
        let (mut ok, failed) = run_batch(jobs, &quick());
        ok.sort();
        assert_eq!(ok, vec![0, 10, 20, 40, 50, 60, 70]);
        assert_eq!(failed.len(), 1);
        assert_eq!(failed[0].label, "job-3");
        assert!(matches!(failed[0].failure, JobFailure::Panicked(_)));
    }
}
