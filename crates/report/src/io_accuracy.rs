//! The Table-2-style predicted-vs-simulated accuracy sweep for the
//! out-of-core kernels, per machine backend — the validation artifact of
//! the parallel-I/O subsystem (`artifacts_io_accuracy.txt`).
//!
//! Every (machine × kernel × size) point compiles the OOC source once,
//! prices it with the analytic interpreter on the backend's calibrated
//! model, and measures it with the discrete-event simulator on the raw
//! parameter tables — the same dual-frame contract as the in-core Table 2.
//! The sweep runs on a caller-chosen number of worker threads and is
//! bit-deterministic at every thread count: jobs write into indexed slots
//! and each job is a pure function of its inputs.

use crate::pipeline::{
    calibrated_machine_for, compile_source, machine_params, PipelineError, PipelineStage,
};
use hpf_compiler::CompileOptions;
use interp::{InterpOptions, InterpretationEngine};
use ipsc_sim::{SimConfig, Simulator};
use serde::Serialize;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// One (machine, kernel, size) point of the I/O accuracy table.
#[derive(Debug, Clone, Serialize)]
pub struct IoAccuracyRow {
    pub machine: String,
    pub app: String,
    pub size: usize,
    pub procs: usize,
    pub predicted_s: f64,
    pub measured_s: f64,
    /// |predicted − measured| / measured, percent.
    pub abs_error_pct: f64,
    /// Predicted I/O share of the total, percent.
    pub io_share_pct: f64,
}

/// Configuration of the sweep.
#[derive(Debug, Clone)]
pub struct IoAccuracyConfig {
    /// Machine backends to cover (default: every registered backend).
    pub machines: Vec<String>,
    pub procs: usize,
    /// Simulated runs per measurement.
    pub runs: usize,
    pub profile_steps: u64,
    /// Worker threads the sweep fans out over (results are identical for
    /// any value ≥ 1).
    pub threads: usize,
}

impl Default for IoAccuracyConfig {
    fn default() -> Self {
        IoAccuracyConfig {
            machines: hpf_machines::machine_names()
                .iter()
                .map(|s| s.to_string())
                .collect(),
            procs: 8,
            runs: 40,
            profile_steps: 5_000_000,
            threads: 1,
        }
    }
}

/// Run the sweep: one row per (machine × OOC kernel × size), sizes being
/// the kernel's minimum and its double (enough to exercise both fitted
/// regimes without making the table a bench).
pub fn io_accuracy(cfg: &IoAccuracyConfig) -> Result<Vec<IoAccuracyRow>, PipelineError> {
    // Compile and profile each (kernel, size) once, shared across machines.
    struct Artifact {
        app: String,
        size: usize,
        spmd: hpf_compiler::SpmdProgram,
        profile: Option<hpf_eval::ExecutionProfile>,
    }
    let mut artifacts = Vec::new();
    for k in kernels::ooc_kernels() {
        let lo = k.size_range.0.max(16);
        for size in [lo, lo * 2] {
            let src = k.source(size, cfg.procs);
            let (analyzed, spmd) = compile_source(
                &src,
                cfg.procs,
                &Default::default(),
                &CompileOptions {
                    nodes: cfg.procs,
                    ..Default::default()
                },
            )?;
            let profile = hpf_eval::run_with_limit(&analyzed, cfg.profile_steps)
                .ok()
                .map(|o| o.profile);
            artifacts.push(Artifact {
                app: k.name.to_string(),
                size,
                spmd,
                profile,
            });
        }
    }

    // The work list in fixed (machine, artifact) order.
    let work: Vec<(usize, usize)> = (0..cfg.machines.len())
        .flat_map(|m| (0..artifacts.len()).map(move |a| (m, a)))
        .collect();

    // Fan out over worker threads; each job writes its own indexed slot,
    // so assembly order is scheduling-independent.
    let slots: Vec<Mutex<Option<Result<IoAccuracyRow, PipelineError>>>> =
        work.iter().map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);
    let workers = cfg.threads.max(1).min(work.len().max(1));
    std::thread::scope(|s| {
        for _ in 0..workers {
            s.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= work.len() {
                    break;
                }
                let (mi, ai) = work[i];
                let machine_name = &cfg.machines[mi];
                let art = &artifacts[ai];
                let row = point(
                    machine_name,
                    art.app.clone(),
                    art.size,
                    cfg,
                    &art.spmd,
                    art.profile.as_ref(),
                );
                *slots[i].lock().unwrap_or_else(|e| e.into_inner()) = Some(row);
            });
        }
    });

    let mut rows = Vec::with_capacity(work.len());
    for slot in slots {
        match slot.into_inner().unwrap_or_else(|e| e.into_inner()) {
            Some(Ok(row)) => rows.push(row),
            Some(Err(e)) => return Err(e),
            None => {
                return Err(PipelineError::new(
                    PipelineStage::Sweep,
                    "io accuracy job produced no result",
                ))
            }
        }
    }
    Ok(rows)
}

fn point(
    machine_name: &str,
    app: String,
    size: usize,
    cfg: &IoAccuracyConfig,
    spmd: &hpf_compiler::SpmdProgram,
    profile: Option<&hpf_eval::ExecutionProfile>,
) -> Result<IoAccuracyRow, PipelineError> {
    let calibrated = calibrated_machine_for(machine_name, cfg.procs)?;
    let aag = appgraph::build_aag(spmd);
    let engine = InterpretationEngine::with_options(&calibrated, InterpOptions::default());
    let pred = engine.interpret(&aag);

    let raw = machine_params(machine_name, cfg.procs)?;
    let sim = Simulator::with_config(
        &raw,
        SimConfig {
            runs: cfg.runs,
            ..Default::default()
        },
    );
    let meas = sim.simulate(spmd, profile);

    let err = if meas.mean > 0.0 {
        100.0 * (pred.total_seconds() - meas.mean).abs() / meas.mean
    } else {
        0.0
    };
    let io_share = if pred.total_seconds() > 0.0 {
        100.0 * pred.total.io / pred.total_seconds()
    } else {
        0.0
    };
    Ok(IoAccuracyRow {
        machine: machine_name.to_string(),
        app,
        size,
        procs: cfg.procs,
        predicted_s: pred.total_seconds(),
        measured_s: meas.mean,
        abs_error_pct: err,
        io_share_pct: io_share,
    })
}

/// Render the sweep as the pinned text artifact.
pub fn io_accuracy_text(cfg: &IoAccuracyConfig, rows: &[IoAccuracyRow]) -> String {
    let mut out = String::new();
    out.push_str("Out-of-core predicted-vs-simulated accuracy (Table-2 methodology, I/O phases)\n");
    out.push_str(&format!(
        "procs={} runs={} (DES mean); io share = predicted I/O fraction\n\n",
        cfg.procs, cfg.runs
    ));
    out.push_str(
        "machine      app           size   predicted     simulated       err     io share\n",
    );
    for r in rows {
        out.push_str(&format!(
            "{:<12} {:<13} {:>5}  {:>9.3}ms  {:>10.3}ms  {:>6.1}%  {:>8.1}%\n",
            r.machine,
            r.app,
            r.size,
            r.predicted_s * 1e3,
            r.measured_s * 1e3,
            r.abs_error_pct,
            r.io_share_pct,
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_cfg(threads: usize) -> IoAccuracyConfig {
        IoAccuracyConfig {
            procs: 4,
            runs: 10,
            threads,
            ..Default::default()
        }
    }

    #[test]
    fn every_backend_within_paper_band() {
        // The acceptance criterion: predicted-vs-simulated error for the
        // OOC kernels stays inside the paper's ±20% band on all four
        // registered backends.
        let rows = io_accuracy(&quick_cfg(1)).unwrap();
        assert_eq!(
            rows.len(),
            hpf_machines::machine_names().len() * kernels::ooc_kernels().len() * 2
        );
        for r in &rows {
            assert!(
                r.abs_error_pct <= 20.0,
                "{} {} n={} err {:.1}% outside ±20%",
                r.machine,
                r.app,
                r.size,
                r.abs_error_pct
            );
            assert!(
                r.io_share_pct > 0.0,
                "{} {} has no I/O share",
                r.machine,
                r.app
            );
        }
    }

    #[test]
    fn sweep_is_thread_count_invariant() {
        // Bit-determinism at threads {1, 2, 8}: the artifact must not
        // depend on scheduling.
        let t1 = io_accuracy_text(&quick_cfg(1), &io_accuracy(&quick_cfg(1)).unwrap());
        let t2 = io_accuracy_text(&quick_cfg(2), &io_accuracy(&quick_cfg(2)).unwrap());
        let t8 = io_accuracy_text(&quick_cfg(8), &io_accuracy(&quick_cfg(8)).unwrap());
        assert_eq!(t1, t2);
        assert_eq!(t1, t8);
    }
}
