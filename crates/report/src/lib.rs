//! # hpf-report — experiment harness
//!
//! Regenerates every table and figure of the paper's evaluation (§5):
//!
//! | Artifact   | Module / binary      |
//! |------------|----------------------|
//! | Table 1    | `bin/table1`         |
//! | Table 2    | [`experiments::table2`], `bin/table2`   |
//! | Figure 2   | `bin/figure2`        |
//! | Figure 3   | [`experiments::figure3`], `bin/figure3` |
//! | Figures 4–5| [`experiments::laplace_curves`], `bin/figures4_5` |
//! | Figure 7   | [`experiments::figure7`], `bin/figure7` |
//! | Figure 8   | [`workflow`], `bin/figure8`             |

pub mod autotune;
pub mod checkpoint;
pub mod csv;
pub mod experiments;
pub mod faults;
pub mod harness;
pub mod io_accuracy;
pub mod lru;
pub mod pipeline;
pub mod session;
pub mod sweep;
pub mod workflow;

pub use harness::{run_batch, run_isolated, HarnessConfig, JobFailure, SweepFailure};
pub use lru::LruMap;
pub use pipeline::{
    compile_source, predict_source, predict_source_full, simulate_source, PipelineError,
    PipelineStage, PredictOptions, SimulateOptions,
};
pub use sweep::{directive_free_source, shared_profile, SweepSession};

/// Serializes tests that flip the process-global `hpf_trace` enable flag.
#[cfg(test)]
pub(crate) static TRACE_TEST_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
