//! A small, deterministic least-recently-used map.
//!
//! The vendored-deps policy keeps external crates out of the build, so the
//! long-running layers (the process-wide profile memo, the `hpf-serve`
//! session caches) share this ~100-line implementation instead of pulling
//! in `lru`. Recency is tracked with a monotonically increasing logical
//! tick per access; eviction removes the minimum-tick entry. Ticks are
//! unique, so for a fixed operation sequence the evicted key is a pure
//! function of that sequence — cache behaviour never depends on hash
//! iteration order or wall-clock time.

use std::collections::HashMap;
use std::hash::Hash;

/// A bounded map with least-recently-used eviction.
#[derive(Debug)]
pub struct LruMap<K, V> {
    cap: usize,
    tick: u64,
    map: HashMap<K, (u64, V)>,
}

impl<K: Eq + Hash + Clone, V> LruMap<K, V> {
    /// An LRU holding at most `cap` entries (`cap` ≥ 1 is enforced).
    pub fn new(cap: usize) -> Self {
        LruMap {
            cap: cap.max(1),
            tick: 0,
            map: HashMap::new(),
        }
    }

    /// Current number of entries.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Is the map empty?
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// Look up `key`, marking it most recently used on a hit.
    pub fn get(&mut self, key: &K) -> Option<&V> {
        self.tick += 1;
        let tick = self.tick;
        match self.map.get_mut(key) {
            Some(entry) => {
                entry.0 = tick;
                Some(&entry.1)
            }
            None => None,
        }
    }

    /// Insert `key → value`, marking it most recently used. Returns the
    /// evicted least-recently-used entry when the insert pushed the map
    /// over capacity (never the key just inserted).
    pub fn insert(&mut self, key: K, value: V) -> Option<(K, V)> {
        self.tick += 1;
        self.map.insert(key, (self.tick, value));
        if self.map.len() <= self.cap {
            return None;
        }
        let victim = self
            .map
            .iter()
            .min_by_key(|(_, (tick, _))| *tick)
            .map(|(k, _)| k.clone())
            .expect("over-capacity map is non-empty");
        self.map.remove_entry(&victim).map(|(k, (_, v))| (k, v))
    }

    /// Fetch-or-compute: on a miss, insert `make()`. Returns a clone of the
    /// cached value, whether the call hit, and the evicted entry (if any).
    pub fn get_or_insert_with(
        &mut self,
        key: &K,
        make: impl FnOnce() -> V,
    ) -> (V, bool, Option<(K, V)>)
    where
        V: Clone,
    {
        if let Some(v) = self.get(key) {
            return (v.clone(), true, None);
        }
        let v = make();
        let evicted = self.insert(key.clone(), v.clone());
        (v, false, evicted)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn evicts_least_recently_used() {
        let mut lru = LruMap::new(2);
        assert!(lru.insert("a", 1).is_none());
        assert!(lru.insert("b", 2).is_none());
        // Touch `a` so `b` becomes the LRU entry.
        assert_eq!(lru.get(&"a"), Some(&1));
        let evicted = lru.insert("c", 3);
        assert_eq!(evicted, Some(("b", 2)));
        assert_eq!(lru.len(), 2);
        assert!(lru.get(&"a").is_some());
        assert!(lru.get(&"c").is_some());
        assert!(lru.get(&"b").is_none());
    }

    #[test]
    fn reinsert_updates_in_place() {
        let mut lru = LruMap::new(2);
        lru.insert("a", 1);
        lru.insert("b", 2);
        assert!(lru.insert("a", 10).is_none(), "no eviction on re-insert");
        assert_eq!(lru.get(&"a"), Some(&10));
        assert_eq!(lru.len(), 2);
    }

    #[test]
    fn capacity_is_at_least_one() {
        let mut lru = LruMap::new(0);
        assert_eq!(lru.capacity(), 1);
        assert!(lru.insert("a", 1).is_none());
        assert_eq!(lru.insert("b", 2), Some(("a", 1)));
    }

    #[test]
    fn get_or_insert_reports_hits_and_evictions() {
        let mut lru = LruMap::new(1);
        let (v, hit, evicted) = lru.get_or_insert_with(&"a", || 1);
        assert_eq!((v, hit), (1, false));
        assert!(evicted.is_none());
        let (v, hit, evicted) = lru.get_or_insert_with(&"a", || unreachable!());
        assert_eq!((v, hit), (1, true));
        assert!(evicted.is_none());
        let (v, hit, evicted) = lru.get_or_insert_with(&"b", || 2);
        assert_eq!((v, hit), (2, false));
        assert_eq!(evicted, Some(("a", 1)));
    }

    #[test]
    fn eviction_order_is_deterministic() {
        // Same operation sequence → same eviction sequence, every time.
        let run = || {
            let mut lru = LruMap::new(3);
            let mut evicted = Vec::new();
            for i in 0..10u32 {
                if let Some((k, _)) = lru.insert(i % 5, i) {
                    evicted.push(k);
                }
                lru.get(&(i % 2));
            }
            evicted
        };
        assert_eq!(run(), run());
    }
}
