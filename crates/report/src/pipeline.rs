//! End-to-end pipeline helpers: source text → prediction (the interpretive
//! path) and source text → simulated measurement (the "run it on the
//! machine" path). These are the two experimentation routes Figure 8
//! compares.

use hpf_compiler::{compile, CompileOptions, SpmdProgram};
use hpf_lang::{analyze, parse_program, LangError};
use hpf_machines::TopologyError;
use interp::{InterpOptions, InterpretationEngine, Prediction};
use ipsc_sim::{SimConfig, SimResult, Simulator};
use machine::MachineModel;
use std::collections::BTreeMap;
use std::collections::HashMap;
use std::sync::{Mutex, OnceLock};

/// Calibrated machine models, built once per node count — the paper's
/// "system abstraction is performed off-line and only once" (§5.3).
pub fn calibrated_machine(nodes: usize) -> MachineModel {
    static CACHE: OnceLock<Mutex<HashMap<usize, MachineModel>>> = OnceLock::new();
    let cache = CACHE.get_or_init(|| Mutex::new(HashMap::new()));
    let mut guard = cache.lock().unwrap_or_else(|e| e.into_inner());
    guard
        .entry(nodes)
        .or_insert_with(|| ipsc_sim::calibrate(nodes))
        .clone()
}

/// [`calibrated_machine`] for any registered backend. The default machine
/// shares the original per-node-count memo (so the iPSC path stays on the
/// exact same cached models); other backends get their own (name, nodes)
/// memo. Unknown names and out-of-range node counts come back as a typed
/// [`PipelineStage::Machine`] error.
pub fn calibrated_machine_for(name: &str, nodes: usize) -> Result<MachineModel, PipelineError> {
    let backend = hpf_machines::machine(name)?;
    backend.validate_nodes(nodes)?;
    if name == hpf_machines::DEFAULT_MACHINE {
        return Ok(calibrated_machine(nodes));
    }
    static CACHE: OnceLock<Mutex<HashMap<(String, usize), MachineModel>>> = OnceLock::new();
    let cache = CACHE.get_or_init(|| Mutex::new(HashMap::new()));
    let mut guard = cache.lock().unwrap_or_else(|e| e.into_inner());
    match guard.entry((name.to_string(), nodes)) {
        std::collections::hash_map::Entry::Occupied(e) => Ok(e.get().clone()),
        std::collections::hash_map::Entry::Vacant(v) => {
            let m = ipsc_sim::calibrate_backend(backend, nodes)?;
            Ok(v.insert(m).clone())
        }
    }
}

/// Uncalibrated parameter tables of a registered backend (the DES side of
/// a sweep runs against these, mirroring how the iPSC path simulates on
/// `machine::ipsc860` rather than the calibrated copy).
pub fn machine_params(name: &str, nodes: usize) -> Result<MachineModel, PipelineError> {
    Ok(hpf_machines::machine(name)?.params(nodes)?)
}

/// Options for [`predict_source`].
#[derive(Debug, Clone)]
pub struct PredictOptions {
    pub nodes: usize,
    /// PARAMETER overrides (problem-size knob of the interface, §5.3).
    pub param_overrides: BTreeMap<String, i64>,
    pub compile: CompileOptions,
    pub interp: InterpOptions,
    /// Registered machine backend to predict for (`hpf_machines` registry
    /// name; the default is the paper's iPSC/860).
    pub machine: String,
}

impl Default for PredictOptions {
    fn default() -> Self {
        PredictOptions {
            nodes: 8,
            param_overrides: BTreeMap::new(),
            compile: CompileOptions::default(),
            interp: InterpOptions::default(),
            machine: hpf_machines::DEFAULT_MACHINE.to_string(),
        }
    }
}

impl PredictOptions {
    pub fn with_nodes(nodes: usize) -> Self {
        PredictOptions {
            nodes,
            ..Default::default()
        }
    }
}

/// Options for [`simulate_source`].
#[derive(Debug, Clone)]
pub struct SimulateOptions {
    pub nodes: usize,
    pub param_overrides: BTreeMap<String, i64>,
    pub compile: CompileOptions,
    pub sim: SimConfig,
    /// Run the functional interpreter to collect the dynamic profile
    /// (actual trip counts / mask densities) before simulating.
    pub use_profile: bool,
    /// Registered machine backend to simulate on.
    pub machine: String,
}

impl Default for SimulateOptions {
    fn default() -> Self {
        SimulateOptions {
            nodes: 8,
            param_overrides: BTreeMap::new(),
            compile: CompileOptions::default(),
            sim: SimConfig::default(),
            use_profile: true,
            machine: hpf_machines::DEFAULT_MACHINE.to_string(),
        }
    }
}

impl SimulateOptions {
    pub fn with_nodes(nodes: usize) -> Self {
        SimulateOptions {
            nodes,
            ..Default::default()
        }
    }
}

/// The pipeline stage that produced an error.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PipelineStage {
    /// Lexing or parsing the HPF source.
    Parse,
    /// Semantic analysis (symbols, directives, alignment).
    Analyze,
    /// SPMD lowering.
    Compile,
    /// Functional interpretation (profiling runs).
    Evaluate,
    /// Interpretation-engine prediction.
    Predict,
    /// Discrete-event simulation.
    Simulate,
    /// The experiment sweep harness itself (panics, timeouts).
    Sweep,
    /// Machine-registry lookup/validation (unknown machine name,
    /// unsupported node count for the machine's topology).
    Machine,
    /// Parallel-I/O validation (bad stripe factor, more servers than
    /// nodes, checkpoint of an unpartitioned array).
    Io,
}

impl PipelineStage {
    pub fn label(&self) -> &'static str {
        match self {
            PipelineStage::Parse => "parse",
            PipelineStage::Analyze => "analyze",
            PipelineStage::Compile => "compile",
            PipelineStage::Evaluate => "evaluate",
            PipelineStage::Predict => "predict",
            PipelineStage::Simulate => "simulate",
            PipelineStage::Sweep => "sweep",
            PipelineStage::Machine => "machine",
            PipelineStage::Io => "io",
        }
    }
}

/// Structured pipeline error: the failing stage, a human-readable message,
/// and — when the stage can point at one — the source span that triggered
/// it. Replaces panics on user-reachable inputs throughout the harness.
#[derive(Debug, Clone)]
pub struct PipelineError {
    pub stage: PipelineStage,
    pub message: String,
    pub span: Option<hpf_lang::Span>,
}

impl PipelineError {
    pub fn new(stage: PipelineStage, message: impl Into<String>) -> Self {
        PipelineError {
            stage,
            message: message.into(),
            span: None,
        }
    }

    pub fn with_span(
        stage: PipelineStage,
        message: impl Into<String>,
        span: hpf_lang::Span,
    ) -> Self {
        PipelineError {
            stage,
            message: message.into(),
            span: Some(span),
        }
    }

    /// 1-based source line of the error, if located.
    pub fn line(&self) -> Option<u32> {
        self.span.map(|s| s.line)
    }

    /// 1-based column of the error within its line, if located (computed
    /// from the span's byte offset against `source`).
    pub fn column_in(&self, source: &str) -> Option<u32> {
        let span = self.span?;
        if span == hpf_lang::Span::SYNTHETIC {
            return None;
        }
        let start = (span.start as usize).min(source.len());
        let line_start = source[..start].rfind('\n').map(|i| i + 1).unwrap_or(0);
        Some(source[line_start..start].chars().count() as u32 + 1)
    }

    /// Render a human-readable spanned diagnostic against the source text
    /// the error came from:
    ///
    /// ```text
    /// parse error at line 4: expected an expression
    ///   4 | FORALL (I = 1:N) A(I) = +
    ///     |                         ^
    /// ```
    ///
    /// Degrades to the plain [`Display`](std::fmt::Display) form when the
    /// error carries no usable span. The `advise` CLI prints this to
    /// stderr and `hpf-serve` embeds the same string in its structured
    /// 400 bodies, so both surfaces show one diagnostic.
    pub fn render_diagnostic(&self, source: &str) -> String {
        use std::fmt::Write as _;
        let mut out = format!("{self}\n");
        let (Some(span), Some(line), Some(col)) = (self.span, self.line(), self.column_in(source))
        else {
            return out;
        };
        let Some(text) = source.lines().nth(line as usize - 1) else {
            return out;
        };
        let gutter = format!("{line}");
        let _ = writeln!(out, "  {gutter} | {text}");
        let width = (span.end.saturating_sub(span.start) as usize).max(1);
        let caret_width = if span.end_line == span.line {
            width.min(text.chars().count().saturating_sub(col as usize - 1).max(1))
        } else {
            1
        };
        let _ = writeln!(
            out,
            "  {:gw$} | {:pad$}{}",
            "",
            "",
            "^".repeat(caret_width),
            gw = gutter.len(),
            pad = col as usize - 1
        );
        out
    }
}

impl std::fmt::Display for PipelineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} error", self.stage.label())?;
        if let Some(s) = self.span {
            write!(f, " at line {}", s.line)?;
        }
        write!(f, ": {}", self.message)
    }
}

impl std::error::Error for PipelineError {}

impl From<LangError> for PipelineError {
    fn from(e: LangError) -> Self {
        let stage = match e.phase {
            hpf_lang::Phase::Lex | hpf_lang::Phase::Parse => PipelineStage::Parse,
            hpf_lang::Phase::Sema => PipelineStage::Analyze,
        };
        PipelineError {
            stage,
            message: e.message,
            span: Some(e.span),
        }
    }
}

impl From<hpf_compiler::CompileError> for PipelineError {
    fn from(e: hpf_compiler::CompileError) -> Self {
        PipelineError {
            // Typed I/O-subsystem failures surface as their own stage so
            // services and CLIs can distinguish them from general lowering
            // errors.
            stage: if e.io.is_some() {
                PipelineStage::Io
            } else {
                PipelineStage::Compile
            },
            message: e.message,
            span: Some(e.span),
        }
    }
}

impl From<kernels::KernelBindError> for PipelineError {
    fn from(e: kernels::KernelBindError) -> Self {
        match e {
            kernels::KernelBindError::Lang(e) => e.into(),
            kernels::KernelBindError::Compile(e) => e.into(),
        }
    }
}

impl From<TopologyError> for PipelineError {
    fn from(e: TopologyError) -> Self {
        PipelineError {
            stage: PipelineStage::Machine,
            message: e.to_string(),
            span: None,
        }
    }
}

impl From<hpf_eval::EvalError> for PipelineError {
    fn from(e: hpf_eval::EvalError) -> Self {
        PipelineError {
            stage: PipelineStage::Evaluate,
            message: e.message,
            span: Some(e.span),
        }
    }
}

/// Parse + analyze + compile.
pub fn compile_source(
    src: &str,
    nodes: usize,
    overrides: &BTreeMap<String, i64>,
    copts: &CompileOptions,
) -> Result<(hpf_lang::AnalyzedProgram, SpmdProgram), PipelineError> {
    let _span = hpf_trace::span("frontend");
    let program = parse_program(src)?;
    let analyzed = analyze(&program, overrides)?;
    let mut copts = copts.clone();
    copts.nodes = nodes;
    let spmd = compile(&analyzed, &copts)?;
    Ok((analyzed, spmd))
}

/// Source-driven performance prediction: the interpretive path.
pub fn predict_source(src: &str, opts: &PredictOptions) -> Result<Prediction, PipelineError> {
    let _span = hpf_trace::span("predict");
    let machine = {
        let _s = hpf_trace::span("calibrate");
        calibrated_machine_for(&opts.machine, opts.nodes)?
    };
    predict_source_on(src, &machine, opts)
}

/// Prediction against an arbitrary abstracted machine (e.g. the HPDC
/// `machine::now_cluster` target of §7). The machine's node count wins over
/// `opts.nodes`.
pub fn predict_source_on(
    src: &str,
    machine: &MachineModel,
    opts: &PredictOptions,
) -> Result<Prediction, PipelineError> {
    let (_, spmd) = compile_source(src, machine.nodes, &opts.param_overrides, &opts.compile)?;
    let aag = appgraph::build_aag(&spmd);
    let engine = InterpretationEngine::with_options(machine, opts.interp.clone());
    Ok(engine.interpret(&aag))
}

/// Full prediction with the AAG kept for output-module queries.
pub fn predict_source_full(
    src: &str,
    opts: &PredictOptions,
) -> Result<(Prediction, appgraph::Aag, SpmdProgram), PipelineError> {
    let (_, spmd) = compile_source(src, opts.nodes, &opts.param_overrides, &opts.compile)?;
    let aag = appgraph::build_aag(&spmd);
    let machine = calibrated_machine_for(&opts.machine, opts.nodes)?;
    let engine = InterpretationEngine::with_options(&machine, opts.interp.clone());
    Ok((engine.interpret(&aag), aag, spmd))
}

/// "Measured" execution: run the program on the simulated iPSC/860.
pub fn simulate_source(src: &str, opts: &SimulateOptions) -> Result<SimResult, PipelineError> {
    let _span = hpf_trace::span("measure");
    let (analyzed, spmd) = compile_source(src, opts.nodes, &opts.param_overrides, &opts.compile)?;
    let profile = if opts.use_profile {
        let _s = hpf_trace::span("profile");
        hpf_eval::run(&analyzed).ok().map(|o| o.profile)
    } else {
        None
    };
    let machine = machine_params(&opts.machine, opts.nodes)?;
    let sim = Simulator::with_config(&machine, opts.sim.clone());
    Ok(sim.simulate(&spmd, profile.as_ref()))
}

#[cfg(test)]
mod tests {
    use super::*;

    const PI_SRC: &str = "
PROGRAM PI
INTEGER, PARAMETER :: N = 512
REAL F(N), PIE
!HPF$ PROCESSORS P(4)
!HPF$ DISTRIBUTE F(BLOCK) ONTO P
FORALL (I = 1:N) F(I) = 4.0 / (1.0 + ((I - 0.5) * (1.0 / N)) ** 2)
PIE = SUM(F) / N
END
";

    #[test]
    fn predict_and_simulate_agree_roughly() {
        let pred = predict_source(PI_SRC, &PredictOptions::with_nodes(4)).unwrap();
        let mut sopts = SimulateOptions::with_nodes(4);
        sopts.sim.runs = 100;
        let meas = simulate_source(PI_SRC, &sopts).unwrap();
        let err = (pred.total_seconds() - meas.measured()).abs() / meas.measured();
        assert!(err < 0.25, "prediction error {:.1}% too large", err * 100.0);
    }

    #[test]
    fn param_override_changes_problem_size() {
        let mut small = PredictOptions::with_nodes(4);
        small.param_overrides.insert("N".into(), 128);
        let mut big = PredictOptions::with_nodes(4);
        big.param_overrides.insert("N".into(), 4096);
        let ts = predict_source(PI_SRC, &small).unwrap().total_seconds();
        let tb = predict_source(PI_SRC, &big).unwrap().total_seconds();
        assert!(tb > 2.0 * ts, "big {tb} vs small {ts}");
    }

    #[test]
    fn bad_source_is_error() {
        assert!(predict_source("NOT FORTRAN", &PredictOptions::default()).is_err());
    }

    #[test]
    fn unknown_machine_fails_at_the_machine_stage() {
        let mut opts = PredictOptions::with_nodes(4);
        opts.machine = "cm5".into();
        let err = predict_source(PI_SRC, &opts).expect_err("unregistered");
        assert_eq!(err.stage, PipelineStage::Machine);
        assert_eq!(err.stage.label(), "machine");
        assert!(err.message.contains("cm5"), "{err}");
    }

    #[test]
    fn out_of_range_nodes_for_a_machine_fail_at_the_machine_stage() {
        let mut opts = SimulateOptions::with_nodes(256);
        opts.machine = "multicore".into(); // tops out at 128 nodes
        let err = simulate_source(PI_SRC, &opts).expect_err("out of range");
        assert_eq!(err.stage, PipelineStage::Machine);
        assert!(err.message.contains("256"), "{err}");
    }

    #[test]
    fn default_machine_paths_are_the_historical_functions_verbatim() {
        let via_registry = calibrated_machine_for(hpf_machines::DEFAULT_MACHINE, 8).unwrap();
        let direct = calibrated_machine(8);
        assert_eq!(format!("{via_registry:?}"), format!("{direct:?}"));
        let params = machine_params(hpf_machines::DEFAULT_MACHINE, 8).unwrap();
        assert_eq!(format!("{params:?}"), format!("{:?}", machine::ipsc860(8)));
    }

    #[test]
    fn render_diagnostic_points_at_the_offending_line() {
        let src = "PROGRAM BAD\nINTEGER, PARAMETER :: N = 64\nREAL A(N)\nA(1) = +\nEND\n";
        let err = predict_source(src, &PredictOptions::default()).unwrap_err();
        let rendered = err.render_diagnostic(src);
        let line = err.line().expect("error carries a span");
        assert!(
            rendered.contains(&format!("line {line}")),
            "missing line number: {rendered}"
        );
        let offending = src.lines().nth(line as usize - 1).unwrap();
        assert!(
            rendered.contains(offending),
            "missing source excerpt: {rendered}"
        );
        assert!(rendered.contains('^'), "missing caret: {rendered}");
    }

    #[test]
    fn render_diagnostic_without_span_degrades_to_display() {
        let err = PipelineError::new(PipelineStage::Sweep, "worker timed out");
        assert_eq!(err.render_diagnostic("anything"), format!("{err}\n"));
    }

    #[test]
    fn tracing_does_not_perturb_results() {
        // The zero-overhead contract, checked at its strongest: enabling
        // the observability layer leaves prediction and simulation
        // bit-identical (no RNG stream is touched by instrumentation).
        let popts = PredictOptions::with_nodes(4);
        let mut sopts = SimulateOptions::with_nodes(4);
        sopts.sim.runs = 50;

        let pred_off = predict_source(PI_SRC, &popts).unwrap();
        let meas_off = simulate_source(PI_SRC, &sopts).unwrap();

        let _lock = crate::TRACE_TEST_LOCK
            .lock()
            .unwrap_or_else(|e| e.into_inner());
        hpf_trace::enable();
        let pred_on = predict_source(PI_SRC, &popts).unwrap();
        let meas_on = simulate_source(PI_SRC, &sopts).unwrap();
        hpf_trace::disable();

        assert_eq!(
            pred_off.total_seconds().to_bits(),
            pred_on.total_seconds().to_bits(),
            "prediction must be bit-identical under tracing"
        );
        assert_eq!(
            meas_off.mean.to_bits(),
            meas_on.mean.to_bits(),
            "simulation must be bit-identical under tracing"
        );

        // And the traced pass actually produced the stage spans.
        let paths: Vec<String> = hpf_trace::span_snapshot()
            .into_iter()
            .map(|s| s.path)
            .collect();
        for expected in ["predict", "predict/frontend/parse", "measure/simulate"] {
            assert!(
                paths.iter().any(|p| p == expected),
                "missing span {expected:?} in {paths:?}"
            );
        }
    }
}
