//! The interactive environment (§3.4's output interface and §5.3's
//! menu-driven workflow), as a scriptable command session: load a program,
//! vary parameters and directives *from within the interface*, predict,
//! query lines, compare against the simulated machine, search directives.
//!
//! The REPL binary (`bin/hpfenv`) is a thin stdin loop over
//! [`Session::execute`]; keeping the engine here makes every command
//! unit-testable.

use crate::autotune::search_distributions;
use crate::pipeline::{
    calibrated_machine, compile_source, predict_source_on, PredictOptions, SimulateOptions,
};
use hpf_compiler::CompileOptions;
use interp::{profile_report, query_line, query_lines, InterpOptions};
use ipsc_sim::SimConfig;
use machine::MachineModel;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Which machine the session predicts for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Target {
    Ipsc860,
    NowCluster,
}

/// Interactive session state.
pub struct Session {
    source: Option<String>,
    source_name: String,
    nodes: usize,
    target: Target,
    overrides: BTreeMap<String, i64>,
    copts: CompileOptions,
    iopts: InterpOptions,
    runs: usize,
}

impl Default for Session {
    fn default() -> Self {
        Session {
            source: None,
            source_name: String::new(),
            nodes: 8,
            target: Target::Ipsc860,
            overrides: BTreeMap::new(),
            copts: CompileOptions::default(),
            iopts: InterpOptions::default(),
            runs: 1000,
        }
    }
}

impl Session {
    pub fn new() -> Self {
        Session::default()
    }

    fn machine(&self) -> MachineModel {
        match self.target {
            Target::Ipsc860 => calibrated_machine(self.nodes),
            Target::NowCluster => machine::now_cluster(self.nodes),
        }
    }

    fn require_source(&self) -> Result<&str, String> {
        self.source.as_deref().ok_or_else(|| {
            "no program loaded — use `kernel <name> [size]` or `load <path>`".to_string()
        })
    }

    /// Execute one command line; returns the text to display.
    pub fn execute(&mut self, line: &str) -> Result<String, String> {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            return Ok(String::new());
        }
        let (cmd, rest) = match line.split_once(char::is_whitespace) {
            Some((c, r)) => (c, r.trim()),
            None => (line, ""),
        };
        match cmd.to_ascii_lowercase().as_str() {
            "help" => Ok(HELP.to_string()),
            "kernel" => self.cmd_kernel(rest),
            "load" => self.cmd_load(rest),
            "source" => Ok(self.require_source()?.to_string()),
            "set" => self.cmd_set(rest),
            "show" => Ok(self.cmd_show()),
            "predict" => self.cmd_predict(),
            "profile" => self.cmd_profile(),
            "line" => self.cmd_line(rest),
            "lines" => self.cmd_lines(rest),
            "outline" => self.cmd_outline(),
            "aag" => self.cmd_aag(),
            "dists" => self.cmd_dists(),
            "simulate" => self.cmd_simulate(rest),
            "compare" => self.cmd_compare(),
            "search" => self.cmd_search(),
            "trace" => self.cmd_trace(),
            "machine" => self.cmd_machine(rest),
            "quit" | "exit" => Err("quit".into()),
            other => Err(format!("unknown command `{other}` — try `help`")),
        }
    }

    fn cmd_kernel(&mut self, rest: &str) -> Result<String, String> {
        // `kernel LFK 1 256` / `kernel PI` / `kernel Laplace (Blk-X) 64`
        let (name, size) = match rest.rsplit_once(' ') {
            Some((n, s)) if s.parse::<usize>().is_ok() => (n.trim(), s.parse().unwrap()),
            _ => (rest, 0usize),
        };
        let k = kernels::kernel_by_name(name)
            .ok_or_else(|| format!("unknown kernel `{name}` — see the `table1` binary"))?;
        let size = if size == 0 {
            k.size_range.1.min(256)
        } else {
            size
        };
        self.source = Some(k.source(size, self.nodes));
        self.source_name = format!("{name} (n={size})");
        Ok(format!(
            "loaded {} for {} nodes",
            self.source_name, self.nodes
        ))
    }

    fn cmd_load(&mut self, path: &str) -> Result<String, String> {
        let text = std::fs::read_to_string(path).map_err(|e| format!("read {path}: {e}"))?;
        self.source = Some(text);
        self.source_name = path.to_string();
        Ok(format!("loaded {path}"))
    }

    fn cmd_set(&mut self, rest: &str) -> Result<String, String> {
        let mut parts = rest.split_whitespace();
        let key = parts.next().ok_or("usage: set <key> <value>")?;
        let val = parts.next().ok_or("usage: set <key> <value>")?;
        match key.to_ascii_lowercase().as_str() {
            "nodes" => {
                self.nodes = val.parse().map_err(|_| "nodes must be an integer")?;
                Ok(format!("nodes = {}", self.nodes))
            }
            "runs" => {
                self.runs = val.parse().map_err(|_| "runs must be an integer")?;
                Ok(format!("runs = {}", self.runs))
            }
            "mask-density" => {
                self.copts.mask_density_hint =
                    val.parse().map_err(|_| "mask-density must be a float")?;
                Ok(format!(
                    "mask density hint = {}",
                    self.copts.mask_density_hint
                ))
            }
            "while-trips" => {
                self.copts.while_trips_hint =
                    val.parse().map_err(|_| "while-trips must be an integer")?;
                Ok(format!(
                    "while trips hint = {}",
                    self.copts.while_trips_hint
                ))
            }
            "memory-model" => {
                self.iopts.memory_hierarchy = val.parse().map_err(|_| "true/false")?;
                Ok(format!(
                    "memory hierarchy model = {}",
                    self.iopts.memory_hierarchy
                ))
            }
            "overlap" => {
                self.iopts.overlap_comp_comm = val.parse().map_err(|_| "true/false")?;
                Ok(format!(
                    "comp/comm overlap model = {}",
                    self.iopts.overlap_comp_comm
                ))
            }
            name if name.starts_with("param:") => {
                let pname = name.trim_start_matches("param:").to_ascii_uppercase();
                let v: i64 = val
                    .parse()
                    .map_err(|_| "parameter value must be an integer")?;
                self.overrides.insert(pname.clone(), v);
                Ok(format!("{pname} = {v} (override)"))
            }
            // Critical variables the tracer could not resolve (§4.2).
            name if name.starts_with("critical:") => {
                let cname = name.trim_start_matches("critical:").to_ascii_uppercase();
                let v: i64 = val
                    .parse()
                    .map_err(|_| "critical value must be an integer")?;
                self.copts.critical_values.insert(cname.clone(), v);
                Ok(format!("critical {cname} = {v}"))
            }
            other => Err(format!(
                "unknown setting `{other}` (nodes, runs, mask-density, while-trips, \
                 memory-model, overlap, param:<NAME>, critical:<NAME>)"
            )),
        }
    }

    fn cmd_show(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "program    : {}",
            if self.source.is_some() {
                &self.source_name
            } else {
                "<none>"
            }
        );
        let _ = writeln!(out, "machine    : {:?} × {}", self.target, self.nodes);
        let _ = writeln!(out, "runs       : {}", self.runs);
        let _ = writeln!(out, "mask hint  : {}", self.copts.mask_density_hint);
        let _ = writeln!(out, "overrides  : {:?}", self.overrides);
        let _ = writeln!(out, "criticals  : {:?}", self.copts.critical_values);
        out
    }

    fn popts(&self) -> PredictOptions {
        PredictOptions {
            nodes: self.nodes,
            param_overrides: self.overrides.clone(),
            compile: self.copts.clone(),
            interp: self.iopts.clone(),
            ..Default::default()
        }
    }

    fn predicted(&self) -> Result<(interp::Prediction, appgraph::Aag), String> {
        let src = self.require_source()?;
        let machine = self.machine();
        let (_, spmd) = compile_source(src, machine.nodes, &self.overrides, &self.copts)
            .map_err(|e| e.to_string())?;
        let aag = appgraph::build_aag(&spmd);
        let engine = interp::InterpretationEngine::with_options(&machine, self.iopts.clone());
        Ok((engine.interpret(&aag), aag))
    }

    fn cmd_predict(&self) -> Result<String, String> {
        let src = self.require_source()?;
        let machine = self.machine();
        let (_, spmd) = compile_source(src, machine.nodes, &self.overrides, &self.copts)
            .map_err(|e| e.to_string())?;
        let aag = appgraph::build_aag(&spmd);
        let engine = interp::InterpretationEngine::with_options(&machine, self.iopts.clone());
        let pred = engine.interpret(&aag);
        let mut out = String::new();
        for w in &spmd.warnings {
            out.push_str(&format!("{w}\n"));
        }
        out.push_str(&format!(
            "estimated {:.6} s on {} (comp {:.6}, comm {:.6}, ovhd {:.6})",
            pred.total_seconds(),
            machine.name,
            pred.total.comp,
            pred.total.comm,
            pred.total.overhead
        ));
        Ok(out)
    }

    fn cmd_profile(&self) -> Result<String, String> {
        let (pred, aag) = self.predicted()?;
        Ok(profile_report(&pred, &aag, &self.source_name))
    }

    fn cmd_line(&self, rest: &str) -> Result<String, String> {
        let n: u32 = rest.trim().parse().map_err(|_| "usage: line <number>")?;
        let (pred, aag) = self.predicted()?;
        let m = query_line(&pred, &aag, n);
        let text = self
            .require_source()?
            .lines()
            .nth(n as usize - 1)
            .unwrap_or("")
            .trim()
            .to_string();
        Ok(format!(
            "line {n}: {:.1} µs (comp {:.1}, comm {:.1}, ovhd {:.1})  | {text}",
            m.time() * 1e6,
            m.comp * 1e6,
            m.comm * 1e6,
            m.overhead * 1e6
        ))
    }

    fn cmd_lines(&self, rest: &str) -> Result<String, String> {
        let mut it = rest.split_whitespace();
        let a: u32 = it
            .next()
            .and_then(|v| v.parse().ok())
            .ok_or("usage: lines <a> <b>")?;
        let b: u32 = it
            .next()
            .and_then(|v| v.parse().ok())
            .ok_or("usage: lines <a> <b>")?;
        let (pred, aag) = self.predicted()?;
        let m = query_lines(&pred, &aag, a..=b);
        Ok(format!(
            "lines {a}-{b}: {:.1} µs (comm fraction {:.1}%)",
            m.time() * 1e6,
            100.0 * m.comm_fraction()
        ))
    }

    fn cmd_outline(&self) -> Result<String, String> {
        let src = self.require_source()?;
        let (_, spmd) = compile_source(src, self.nodes, &self.overrides, &self.copts)
            .map_err(|e| e.to_string())?;
        Ok(spmd.outline())
    }

    fn cmd_aag(&self) -> Result<String, String> {
        let src = self.require_source()?;
        let (_, spmd) = compile_source(src, self.nodes, &self.overrides, &self.copts)
            .map_err(|e| e.to_string())?;
        Ok(appgraph::build_aag(&spmd).outline())
    }

    fn cmd_dists(&self) -> Result<String, String> {
        let src = self.require_source()?;
        let (_, spmd) = compile_source(src, self.nodes, &self.overrides, &self.copts)
            .map_err(|e| e.to_string())?;
        let mut out = format!(
            "grid {:?} ({} nodes)\n",
            spmd.grid.extents,
            spmd.grid.total()
        );
        for (name, d) in &spmd.dist.arrays {
            let dims: Vec<String> = d
                .dims
                .iter()
                .map(|dd| match dd {
                    hpf_compiler::DimDist::Collapsed => "*".to_string(),
                    hpf_compiler::DimDist::Block { pcount, block, .. } => {
                        format!("BLOCK({block})x{pcount}")
                    }
                    hpf_compiler::DimDist::Cyclic { pcount, .. } => format!("CYCLIC x{pcount}"),
                })
                .collect();
            let _ = writeln!(
                out,
                "  {name:<10} ({}) {}",
                dims.join(", "),
                if d.replicated { "replicated" } else { "" }
            );
        }
        Ok(out)
    }

    fn cmd_simulate(&self, rest: &str) -> Result<String, String> {
        let src = self.require_source()?;
        let runs: usize = rest.trim().parse().unwrap_or(self.runs);
        let mut o = SimulateOptions::with_nodes(self.nodes);
        o.param_overrides = self.overrides.clone();
        o.compile = self.copts.clone();
        o.sim = SimConfig {
            runs,
            ..Default::default()
        };
        let r = crate::pipeline::simulate_source(src, &o).map_err(|e| e.to_string())?;
        Ok(format!(
            "measured {:.6} s ± {:.6} over {} runs (comp {:.6}, comm {:.6})",
            r.mean, r.std, r.runs, r.comp, r.comm
        ))
    }

    fn cmd_compare(&self) -> Result<String, String> {
        let src = self.require_source()?;
        let machine = self.machine();
        let pred = predict_source_on(src, &machine, &self.popts()).map_err(|e| e.to_string())?;
        let mut o = SimulateOptions::with_nodes(self.nodes);
        o.param_overrides = self.overrides.clone();
        o.compile = self.copts.clone();
        o.sim = SimConfig {
            runs: self.runs.min(200),
            ..Default::default()
        };
        let meas = crate::pipeline::simulate_source(src, &o).map_err(|e| e.to_string())?;
        let err = 100.0 * (pred.total_seconds() - meas.mean).abs() / meas.mean.max(1e-30);
        Ok(format!(
            "estimated {:.6} s   measured {:.6} s   |error| {:.2}%",
            pred.total_seconds(),
            meas.mean,
            err
        ))
    }

    fn cmd_search(&self) -> Result<String, String> {
        let src = self.require_source()?;
        let choices = search_distributions(src, self.nodes).map_err(|e| e.to_string())?;
        let mut out = String::new();
        for c in &choices {
            let _ = writeln!(
                out,
                "{:<18} {:?} {:>12.6} s",
                c.label(),
                c.grid,
                c.predicted_s
            );
        }
        if let Some(best) = choices.first() {
            let _ = writeln!(out, "recommended: DISTRIBUTE {}", best.label());
        }
        Ok(out)
    }

    fn cmd_trace(&self) -> Result<String, String> {
        let src = self.require_source()?;
        let (analyzed, spmd) = compile_source(src, self.nodes, &self.overrides, &self.copts)
            .map_err(|e| e.to_string())?;
        let profile = hpf_eval::run_with_limit(&analyzed, 10_000_000)
            .ok()
            .map(|o| o.profile);
        let machine = machine::ipsc860(self.nodes);
        let tr = ipsc_sim::trace_program(&machine, &spmd, profile.as_ref());
        let mut out = tr.gantt(64);
        let _ = writeln!(out, "\nutilization (busy/comm/idle):");
        for (n, (b, c, i)) in tr.utilization().iter().enumerate() {
            let _ = writeln!(
                out,
                "  node {n}: {:>5.1}% / {:>5.1}% / {:>5.1}%",
                b * 100.0,
                c * 100.0,
                i * 100.0
            );
        }
        Ok(out)
    }

    fn cmd_machine(&mut self, rest: &str) -> Result<String, String> {
        match rest.to_ascii_lowercase().as_str() {
            "ipsc860" | "ipsc" | "cube" => {
                self.target = Target::Ipsc860;
                Ok("target machine: iPSC/860".into())
            }
            "now" | "cluster" => {
                self.target = Target::NowCluster;
                Ok("target machine: NOW cluster".into())
            }
            "" => Ok(format!(
                "target machine: {:?}\n{}",
                self.target,
                self.machine().sag.outline()
            )),
            other => Err(format!("unknown machine `{other}` (ipsc860, now)")),
        }
    }
}

const HELP: &str = "\
commands:
  kernel <name> [size]     load a Table-1 benchmark (e.g. `kernel PI 1024`)
  load <path>              load HPF source from a file
  source                   show the loaded source
  set nodes <n>            machine size
  set runs <n>             simulated runs for `simulate`/`compare`
  set param:<NAME> <v>     override a PARAMETER (problem size knob)
  set critical:<NAME> <v>  supply an unresolved critical variable
  set mask-density <f>     static mask-density heuristic
  set while-trips <n>      DO WHILE trip-count heuristic
  set memory-model <bool>  memory-hierarchy model on/off
  set overlap <bool>       comp/comm overlap model on/off
  machine [ipsc860|now]    select / show the target machine
  show                     session state
  predict                  estimated execution time
  profile                  full comp/comm/overhead profile
  line <n> | lines <a> <b> per-source-line metrics
  outline | aag | dists    SPMD phases / abstraction graph / distributions
  simulate [runs]          run on the simulated machine
  compare                  estimated vs measured
  search                   evaluate all DISTRIBUTE alternatives
  trace                    per-node Gantt from the simulated machine
  quit
";

#[cfg(test)]
mod tests {
    use super::*;

    fn s(session: &mut Session, cmd: &str) -> String {
        session
            .execute(cmd)
            .unwrap_or_else(|e| panic!("{cmd}: {e}"))
    }

    #[test]
    fn full_workflow() {
        let mut se = Session::new();
        s(&mut se, "set nodes 4");
        let out = s(&mut se, "kernel PI 512");
        assert!(out.contains("PI"));
        let pred = s(&mut se, "predict");
        assert!(pred.contains("estimated"), "{pred}");
        let prof = s(&mut se, "profile");
        assert!(prof.contains("communication"));
        let cmp = s(&mut se, "compare");
        assert!(cmp.contains("|error|"), "{cmp}");
    }

    #[test]
    fn parameter_override_changes_prediction() {
        let mut se = Session::new();
        s(&mut se, "set nodes 4");
        s(&mut se, "kernel PI 512");
        let t1 = s(&mut se, "predict");
        s(&mut se, "set param:N 4096");
        let t2 = s(&mut se, "predict");
        assert_ne!(t1, t2);
    }

    #[test]
    fn line_query_hits_forall() {
        let mut se = Session::new();
        s(&mut se, "set nodes 4");
        s(&mut se, "kernel PI 512");
        let src = s(&mut se, "source");
        let forall = src.lines().position(|l| l.starts_with("FORALL")).unwrap() + 1;
        let out = s(&mut se, &format!("line {forall}"));
        assert!(out.contains("µs"), "{out}");
    }

    #[test]
    fn search_from_session() {
        let mut se = Session::new();
        s(&mut se, "set nodes 4");
        s(&mut se, "kernel Laplace (Blk-Blk) 64");
        let out = s(&mut se, "search");
        assert!(out.contains("recommended"), "{out}");
    }

    #[test]
    fn machine_switch() {
        let mut se = Session::new();
        s(&mut se, "set nodes 8");
        s(&mut se, "kernel PI 1024");
        let cube = s(&mut se, "predict");
        s(&mut se, "machine now");
        let now = s(&mut se, "predict");
        assert!(now.contains("NOW"), "{now}");
        assert_ne!(cube, now);
    }

    #[test]
    fn errors_are_reported_not_panicked() {
        let mut se = Session::new();
        assert!(se.execute("predict").is_err());
        assert!(se.execute("kernel NOSUCH").is_err());
        assert!(se.execute("set bogus 1").is_err());
        assert!(se.execute("frobnicate").is_err());
        assert!(se.execute("").unwrap().is_empty());
        assert!(se.execute("# comment").unwrap().is_empty());
    }

    #[test]
    fn dists_and_outline_render() {
        let mut se = Session::new();
        s(&mut se, "set nodes 4");
        s(&mut se, "kernel Laplace (Blk-X) 64");
        let d = s(&mut se, "dists");
        assert!(d.contains("BLOCK"), "{d}");
        let o = s(&mut se, "outline");
        assert!(o.contains("Comp"), "{o}");
        let a = s(&mut se, "aag");
        assert!(a.contains("IterD"), "{a}");
    }

    #[test]
    fn trace_renders_gantt() {
        let mut se = Session::new();
        s(&mut se, "set nodes 4");
        s(&mut se, "kernel PI 256");
        let t = s(&mut se, "trace");
        assert!(t.contains("node 0:"), "{t}");
        assert!(t.contains("utilization"));
    }

    #[test]
    fn critical_value_setting() {
        let mut se = Session::new();
        let out = s(&mut se, "set critical:M 64");
        assert!(out.contains("M = 64"));
    }
}
