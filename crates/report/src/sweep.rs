//! # Interpretation sessions — compile-once sweep evaluation
//!
//! The paper's workflow (§5.3) is a *loop*: abstract the application once,
//! then re-interpret it at many `(N, P)` points to map out the performance
//! surface. Before this module, every sweep point re-ran the lexer, parser
//! and semantic analyzer on freshly generated source — three times the
//! front-end work the paper's own tooling does once.
//!
//! [`SweepSession`] holds a [`CompiledKernel`] artifact (one parse per
//! kernel shape, ever) and a per-problem-size cache of functional-
//! interpreter profiles. [`SweepSession::evaluate`] re-binds the critical
//! variable `N` and the processor grid through semantic-analysis
//! overrides, then feeds *one* SPMD program to both the analytic
//! interpretation engine and the discrete-event simulator — the shared-
//! artifact restructure that makes prediction and measurement provably
//! compare the same program.
//!
//! Sessions are `Send + Sync`; sweep workers share one behind an `Arc`,
//! so a size-`n` profile is computed by whichever worker gets there first
//! and reused by the rest.

use std::collections::HashMap;
use std::sync::{Arc, Mutex, OnceLock};

use hpf_compiler::CompileOptions;
use hpf_eval::ExecutionProfile;
use hpf_lang::AnalyzedProgram;
use kernels::{CompiledKernel, Kernel};

use crate::experiments::{sample_from_artifact_on, AccuracySample, SweepConfig};
use crate::lru::LruMap;
use crate::pipeline::PipelineError;

/// A computed-at-most-once profile entry: `None` means the functional
/// interpreter exceeded its step budget for this point.
type ProfileSlot = Arc<OnceLock<Option<Arc<ExecutionProfile>>>>;

/// Memo key: (directive-stripped source text, problem size, step budget).
type ProfileKey = (String, usize, u64);

/// Capacity of the process-wide profile memo. Profiles are the largest
/// cached objects in the process, and a long-running server profiles an
/// unbounded stream of distinct programs — without eviction the memo is a
/// slow leak. 64 slots comfortably covers every sweep in the experiment
/// harness (tens of distinct (source, n) points) while bounding resident
/// memory for serving workloads.
pub const PROFILE_MEMO_CAP: usize = 64;

/// The profile memo key for a source text: the program with every HPF
/// directive comment line removed. The functional interpreter never reads
/// mapping directives, so programs differing only in PROCESSORS / ALIGN /
/// DISTRIBUTE lines have bit-identical profiles — keying on the stripped
/// text lets a directive-space search over hundreds of candidate rewrites
/// run the interpreter exactly once per problem size.
pub fn directive_free_source(src: &str) -> String {
    src.lines()
        .filter(|l| !l.trim_start().starts_with("!HPF$"))
        .collect::<Vec<_>>()
        .join("\n")
}

/// Process-global profile memo. The profile is a deterministic function of
/// (directive-stripped source text, problem size, step budget), so entries
/// are shareable across sessions, sweeps and figures without affecting any
/// output bit. Bounded at [`PROFILE_MEMO_CAP`] entries with LRU eviction
/// (`profile_cache.evict` counts evictions) so a long-running process —
/// the `hpf-serve` server in particular — cannot grow it without limit.
fn global_profiles() -> &'static Mutex<LruMap<ProfileKey, ProfileSlot>> {
    static CACHE: OnceLock<Mutex<LruMap<ProfileKey, ProfileSlot>>> = OnceLock::new();
    CACHE.get_or_init(|| Mutex::new(LruMap::new(PROFILE_MEMO_CAP)))
}

/// A compile-once interpretation session for one kernel.
///
/// Construction parses the kernel's canonical source a single time;
/// [`evaluate`](SweepSession::evaluate) then serves any `(n, procs)` point
/// by re-binding the cached AST (semantic analysis + SPMD lowering only)
/// and reusing the per-size execution profile across processor counts —
/// sound because the functional interpreter never reads the PROCESSORS
/// arrangement, so the profile depends only on `(program, n)`.
#[derive(Debug)]
pub struct SweepSession {
    compiled: CompiledKernel,
    profile_steps: u64,
    runs: usize,
    machine: String,
    profiles: Mutex<HashMap<usize, Option<Arc<ExecutionProfile>>>>,
}

impl SweepSession {
    /// Parse the kernel once and capture the sweep-relevant limits from
    /// `cfg` (profile step budget, simulated runs per measurement, target
    /// machine).
    pub fn new(kernel: &Kernel, cfg: &SweepConfig) -> Result<Self, PipelineError> {
        let compiled = CompiledKernel::new(kernel)?;
        Ok(SweepSession {
            compiled,
            profile_steps: cfg.profile_steps,
            runs: cfg.runs,
            machine: cfg.machine.clone(),
            profiles: Mutex::new(HashMap::new()),
        })
    }

    /// The kernel this session evaluates.
    pub fn kernel(&self) -> &Kernel {
        self.compiled.kernel()
    }

    /// Evaluate one sweep point: re-bind the artifact to `(n, procs)`,
    /// profile (cached per `n`), predict and simulate from the same SPMD
    /// program.
    pub fn evaluate(&self, n: usize, procs: usize) -> Result<AccuracySample, PipelineError> {
        let _session = hpf_trace::span("session");
        hpf_trace::counter_add("session.evaluate", 1);
        let (analyzed, spmd) = {
            let _bind = hpf_trace::span("bind");
            hpf_trace::counter_add("session.bind", 1);
            self.compiled
                .bind(n as i64, procs, &CompileOptions::default())?
        };
        let profile = self.profile_for(n, &analyzed);
        sample_from_artifact_on(
            self.compiled.kernel().name,
            &spmd,
            profile.as_deref(),
            n,
            procs,
            self.runs,
            &self.machine,
        )
    }

    /// The functional-interpreter profile for problem size `n`, computed
    /// at most once per *process* for a given (directive-stripped source, size,
    /// step budget) — the profile is a pure function of those three, so
    /// repeated sessions over the same kernel shape (bench iterations,
    /// Figure 4 then Figure 5) skip the interpreter entirely. The global
    /// map's lock only guards slot lookup; the per-slot [`OnceLock`] makes
    /// same-size workers wait for the first computation while distinct
    /// sizes profile concurrently.
    fn profile_for(&self, n: usize, analyzed: &AnalyzedProgram) -> Option<Arc<ExecutionProfile>> {
        if let Some(p) = self
            .profiles
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .get(&n)
        {
            return p.clone();
        }
        let (profile, _) = shared_profile(
            self.compiled.canonical_source(),
            n,
            self.profile_steps,
            analyzed,
        );
        self.profiles
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .insert(n, profile.clone());
        profile
    }

    /// Number of distinct problem sizes whose profiles are cached.
    pub fn cached_profiles(&self) -> usize {
        self.profiles
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .len()
    }
}

/// The functional-interpreter profile for `(source, n, step budget)`,
/// computed at most once per *process* — the warm-session primitive shared
/// by [`SweepSession`] and the directive-space advisor. The memo key is the
/// directive-stripped source (see module docs), so directive rewrites of
/// the same program all hit one entry. Returns the profile (`None` = the
/// step budget was exceeded) and whether the call was served from the memo
/// without running the interpreter.
pub fn shared_profile(
    canonical_source: &str,
    n: usize,
    profile_steps: u64,
    analyzed: &AnalyzedProgram,
) -> (Option<Arc<ExecutionProfile>>, bool) {
    let slot = {
        let key = (directive_free_source(canonical_source), n, profile_steps);
        let mut guard = global_profiles().lock().unwrap_or_else(|e| e.into_inner());
        let (slot, hit, evicted) = guard.get_or_insert_with(&key, ProfileSlot::default);
        hpf_trace::counter_add(
            if hit {
                "profile_cache.hit"
            } else {
                "profile_cache.miss"
            },
            1,
        );
        if evicted.is_some() {
            hpf_trace::counter_add("profile_cache.evict", 1);
        }
        slot
    };
    let mut computed = false;
    let profile = slot
        .get_or_init(|| {
            computed = true;
            let _s = hpf_trace::span("profile");
            hpf_eval::run_with_limit(analyzed, profile_steps)
                .ok()
                .map(|o| Arc::new(o.profile))
        })
        .clone();
    (profile, !computed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::accuracy_sample;

    /// The heart of the tentpole: a session-evaluated point is
    /// bit-identical to the from-scratch path for every output field.
    #[test]
    fn session_matches_scratch_bitwise() {
        let k = kernels::kernel_by_name("PI").unwrap();
        let cfg = SweepConfig::quick();
        let session = SweepSession::new(&k, &cfg).unwrap();
        for &(n, p) in &[(128usize, 1usize), (512, 4)] {
            let a = session.evaluate(n, p).unwrap();
            let b = accuracy_sample(&k, n, p, &cfg).unwrap();
            assert_eq!(a.predicted_s.to_bits(), b.predicted_s.to_bits());
            assert_eq!(a.measured_s.to_bits(), b.measured_s.to_bits());
            assert_eq!(a.measured_std_s.to_bits(), b.measured_std_s.to_bits());
            assert_eq!(a.abs_error_pct.to_bits(), b.abs_error_pct.to_bits());
        }
    }

    /// A non-default machine threads all the way through the session path
    /// and still matches the from-scratch path bit-for-bit — and actually
    /// changes the numbers relative to the default backend.
    #[test]
    fn session_matches_scratch_on_non_default_machine() {
        let k = kernels::kernel_by_name("PI").unwrap();
        let cfg = SweepConfig {
            machine: "torus3d".to_string(),
            ..SweepConfig::quick()
        };
        let session = SweepSession::new(&k, &cfg).unwrap();
        let a = session.evaluate(128, 4).unwrap();
        let b = accuracy_sample(&k, 128, 4, &cfg).unwrap();
        assert_eq!(a.predicted_s.to_bits(), b.predicted_s.to_bits());
        assert_eq!(a.measured_s.to_bits(), b.measured_s.to_bits());
        assert_eq!(a.measured_std_s.to_bits(), b.measured_std_s.to_bits());

        let default_session = SweepSession::new(&k, &SweepConfig::quick()).unwrap();
        let d = default_session.evaluate(128, 4).unwrap();
        assert_ne!(
            a.measured_s.to_bits(),
            d.measured_s.to_bits(),
            "torus backend should not time like the hypercube"
        );
    }

    /// Profiles are reused across processor counts: the functional
    /// interpreter never reads PROCESSORS, so one profile per size.
    #[test]
    fn profile_cache_is_per_size_not_per_procs() {
        let k = kernels::kernel_by_name("PI").unwrap();
        let cfg = SweepConfig::quick();
        let session = SweepSession::new(&k, &cfg).unwrap();
        session.evaluate(128, 1).unwrap();
        session.evaluate(128, 4).unwrap();
        assert_eq!(session.cached_profiles(), 1);
        session.evaluate(256, 4).unwrap();
        assert_eq!(session.cached_profiles(), 2);
    }

    /// The process-wide memo is bounded and instrumented: repeat lookups
    /// count as hits, first-time lookups as misses (the memo itself is
    /// shared process state, so the test only asserts deltas).
    #[test]
    fn profile_cache_counters_fire() {
        let k = kernels::kernel_by_name("PI").unwrap();
        let cfg = SweepConfig::quick();
        let session = SweepSession::new(&k, &cfg).unwrap();
        let analyzed = {
            let compiled = kernels::CompiledKernel::new(&k).unwrap();
            compiled.bind(96, 1, &CompileOptions::default()).unwrap().0
        };

        let _lock = crate::TRACE_TEST_LOCK
            .lock()
            .unwrap_or_else(|e| e.into_inner());
        hpf_trace::reset();
        hpf_trace::enable();
        // First call may hit or miss depending on what ran before in this
        // process; the two calls after it must both be hits.
        shared_profile(
            session.compiled.canonical_source(),
            96,
            cfg.profile_steps,
            &analyzed,
        );
        let hits_before = hpf_trace::counter_get("profile_cache.hit");
        shared_profile(
            session.compiled.canonical_source(),
            96,
            cfg.profile_steps,
            &analyzed,
        );
        shared_profile(
            session.compiled.canonical_source(),
            96,
            cfg.profile_steps,
            &analyzed,
        );
        hpf_trace::disable();
        assert_eq!(hpf_trace::counter_get("profile_cache.hit") - hits_before, 2);
    }

    /// Session counters fire under tracing: one evaluate = one bind.
    #[test]
    fn session_counters_register() {
        let k = kernels::kernel_by_name("PI").unwrap();
        let cfg = SweepConfig::quick();
        let session = SweepSession::new(&k, &cfg).unwrap();

        let _lock = crate::TRACE_TEST_LOCK
            .lock()
            .unwrap_or_else(|e| e.into_inner());
        hpf_trace::reset();
        hpf_trace::enable();
        session.evaluate(128, 4).unwrap();
        session.evaluate(128, 1).unwrap();
        hpf_trace::disable();

        assert_eq!(hpf_trace::counter_get("session.evaluate"), 2);
        assert_eq!(hpf_trace::counter_get("session.bind"), 2);
        let paths: Vec<String> = hpf_trace::span_snapshot()
            .into_iter()
            .map(|s| s.path)
            .collect();
        assert!(
            paths.iter().any(|p| p == "session/bind"),
            "missing session/bind span in {paths:?}"
        );
    }
}
