//! Figure 8: experimentation-time model — the usability / cost-effectiveness
//! comparison of §5.3.
//!
//! The paper contrasts the interpretive path (edit parameters in the
//! interface on a Sparcstation, re-interpret: ~10 minutes per Laplace
//! implementation) with the measurement path on the shared iPSC/860
//! (edit, cross-compile, transfer the executable to the SRM, load onto the
//! cube, run 1000 times per configuration, repeat per instance: 27–60
//! minutes). This module models that workflow with the machine's I/O
//! component plus human-step constants, and can also time this
//! reproduction's two actual code paths as the modern analog.

use machine::MachineModel;
use serde::Serialize;

/// Human/workflow constants (seconds). Defaults chosen to match the
/// workflow the paper describes (§5.3).
#[derive(Debug, Clone)]
pub struct WorkflowModel {
    /// Editing the source / directives for one variant.
    pub edit_s: f64,
    /// Cross-compiling on the workstation (compiling on the SRM front end
    /// was not allowed, to reduce its load).
    pub cross_compile_s: f64,
    /// Executable size (drives transfer + load times via the I/O SAU).
    pub executable_bytes: u64,
    /// Waiting for the required cube configuration on the shared machine,
    /// per load (the iPSC "is shared by various development groups").
    pub queue_wait_s: f64,
    /// Interactive parameter setup in the interpreter interface.
    pub interp_setup_s: f64,
    /// One interpretation run (source-driven, on the workstation).
    pub interp_run_s: f64,
}

impl Default for WorkflowModel {
    fn default() -> Self {
        WorkflowModel {
            edit_s: 180.0,
            cross_compile_s: 300.0,
            executable_bytes: 1_500_000,
            queue_wait_s: 420.0,
            interp_setup_s: 90.0,
            interp_run_s: 25.0,
        }
    }
}

/// Experimentation-time estimate for one implementation variant.
#[derive(Debug, Clone, Serialize)]
pub struct ExperimentationTime {
    pub variant: String,
    /// Total minutes using the interpretive framework.
    pub interpreter_min: f64,
    /// Total minutes using measurement on the machine.
    pub measured_min: f64,
}

impl WorkflowModel {
    /// Time to evaluate one implementation variant over `instances`
    /// experiment instances (problem-size × system-size points), where each
    /// measured instance runs `runs` repetitions averaging `mean_run_s`
    /// seconds each.
    ///
    /// The measurement path repeats edit → compile → transfer → load →
    /// run *per instance* ("the process had to be repeated for each
    /// instance of each experiment"), while the interpreter varies
    /// parameters from within the interface.
    pub fn variant_times(
        &self,
        machine: &MachineModel,
        variant: &str,
        instances: usize,
        runs: usize,
        mean_run_s: f64,
    ) -> ExperimentationTime {
        let io = &machine.io;
        let transfer = self.executable_bytes as f64 / io.transfer_bandwidth_bps;
        let load = io.load_time(self.executable_bytes);

        // Measured path: one edit + cross-compile + executable transfer +
        // queue wait for the required cube configuration per variant, then
        // per experiment instance a node-program load plus the timed runs
        // ("the process had to be repeated for each instance").
        let per_instance = load + runs as f64 * mean_run_s;
        let measured = self.edit_s
            + self.cross_compile_s
            + transfer
            + self.queue_wait_s
            + instances as f64 * per_instance;

        // Interpreter path: one setup, then one interpretation per instance
        // from inside the interface.
        let interp = self.interp_setup_s + instances as f64 * self.interp_run_s;

        ExperimentationTime {
            variant: variant.to_string(),
            interpreter_min: interp / 60.0,
            measured_min: measured / 60.0,
        }
    }
}

/// Wall-clock timing of this reproduction's own two paths (the modern
/// analog of Figure 8): how long our interpreter takes vs our simulated
/// "machine runs" for the same experiment set.
#[derive(Debug, Clone, Serialize)]
pub struct ActualPathTiming {
    pub variant: String,
    pub interpreter_wall_s: f64,
    pub simulator_wall_s: f64,
}

/// Time the actual prediction and simulation paths for a source generator
/// over a set of sizes.
pub fn time_actual_paths(
    variant: &str,
    sources: &[(usize, String)],
    procs: usize,
    runs: usize,
) -> ActualPathTiming {
    use crate::pipeline::{predict_source, simulate_source, PredictOptions, SimulateOptions};
    let t0 = std::time::Instant::now();
    for (_, src) in sources {
        let _ = predict_source(src, &PredictOptions::with_nodes(procs));
    }
    let interp_wall = t0.elapsed().as_secs_f64();

    let t1 = std::time::Instant::now();
    for (_, src) in sources {
        let mut o = SimulateOptions::with_nodes(procs);
        o.sim.runs = runs;
        let _ = simulate_source(src, &o);
    }
    let sim_wall = t1.elapsed().as_secs_f64();
    ActualPathTiming {
        variant: variant.to_string(),
        interpreter_wall_s: interp_wall,
        simulator_wall_s: sim_wall,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use machine::ipsc860;

    #[test]
    fn interpreter_is_markedly_cheaper() {
        let m = ipsc860(8);
        let w = WorkflowModel::default();
        // The paper's Laplace experiment: 16 sizes × 1000 runs, ~0.05 s mean
        // over the 16-256 size range.
        let t = w.variant_times(&m, "(Blk,*)", 16, 1000, 0.05);
        assert!(
            t.interpreter_min < 12.0,
            "interpreter ~10 min, got {:.1}",
            t.interpreter_min
        );
        assert!(
            t.measured_min > 25.0 && t.measured_min < 70.0,
            "measured 27-60 min band, got {:.1}",
            t.measured_min
        );
        assert!(t.measured_min > 2.0 * t.interpreter_min);
    }

    #[test]
    fn slower_runs_increase_only_measured_path() {
        let m = ipsc860(8);
        let w = WorkflowModel::default();
        let fast = w.variant_times(&m, "a", 16, 1000, 0.05);
        let slow = w.variant_times(&m, "b", 16, 1000, 0.15);
        assert_eq!(fast.interpreter_min, slow.interpreter_min);
        assert!(slow.measured_min > fast.measured_min);
    }
}
