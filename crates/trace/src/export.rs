//! Exports: the machine-readable JSON document and the human-readable
//! flamegraph-style text tree.

use crate::json::Value;
use crate::registry::{
    counters_snapshot, gauges_snapshot, histograms_snapshot, sketches_snapshot, Histogram,
};
use crate::span::{span_snapshot, SpanSnapshot};

/// Serialize the current spans + metrics as a `hpf-trace/v1` JSON
/// document. Deterministic layout (sorted keys/paths) so two exports of
/// the same run diff cleanly.
pub fn export_json() -> String {
    let spans: Vec<Value> = span_snapshot()
        .iter()
        .map(|s| {
            Value::obj(vec![
                ("path", Value::Str(s.path.clone())),
                ("count", Value::Num(s.count as f64)),
                ("total_s", Value::Num(s.total_s())),
                ("min_s", Value::Num(s.min_ns as f64 / 1e9)),
                ("max_s", Value::Num(s.max_ns as f64 / 1e9)),
            ])
        })
        .collect();

    let counters = Value::Obj(
        counters_snapshot()
            .into_iter()
            .map(|(k, v)| (k, Value::Num(v as f64)))
            .collect(),
    );
    let gauges = Value::Obj(
        gauges_snapshot()
            .into_iter()
            .map(|(k, v)| (k, Value::Num(v)))
            .collect(),
    );
    let histograms = Value::Obj(
        histograms_snapshot()
            .into_iter()
            .map(|(k, h)| {
                let buckets: Vec<Value> = h
                    .buckets
                    .iter()
                    .enumerate()
                    .filter(|(_, &c)| c > 0)
                    .map(|(i, &c)| {
                        Value::Arr(vec![
                            Value::Num(Histogram::bucket_lower(i)),
                            Value::Num(c as f64),
                        ])
                    })
                    .collect();
                let v = Value::obj(vec![
                    ("count", Value::Num(h.count as f64)),
                    ("sum_s", Value::Num(h.sum)),
                    ("min_s", Value::Num(h.min)),
                    ("max_s", Value::Num(h.max)),
                    ("p50_s", Value::Num(h.quantile(0.50))),
                    ("p95_s", Value::Num(h.quantile(0.95))),
                    ("buckets", Value::Arr(buckets)),
                ]);
                (k, v)
            })
            .collect(),
    );

    let sketches = Value::Obj(
        sketches_snapshot()
            .into_iter()
            .map(|(k, s)| (k, s.to_value()))
            .collect(),
    );

    Value::obj(vec![
        ("schema", Value::Str("hpf-trace/v1".into())),
        ("spans", Value::Arr(spans)),
        ("counters", counters),
        ("gauges", gauges),
        ("histograms", histograms),
        ("sketches", sketches),
    ])
    .pretty()
}

/// Render the span tree as indented flamegraph-style text:
///
/// ```text
/// predict                       12.88ms 100.0%  ×1
///   compile                      1.02ms   7.9%  ×1   (self 0.31ms)
///     parse                      0.71ms   5.5%  ×3
/// ```
///
/// Percentages are of the total root time; `self` is the span's time not
/// covered by its (recorded) children, shown when it differs from the
/// total.
pub fn flame_text() -> String {
    let spans = span_snapshot();
    if spans.is_empty() {
        return "(no spans recorded)\n".to_string();
    }
    let root_total: u64 = spans
        .iter()
        .filter(|s| s.depth == 0)
        .map(|s| s.total_ns)
        .sum::<u64>()
        .max(1);

    let name_width = spans
        .iter()
        .map(|s| 2 * s.depth + s.leaf().len())
        .max()
        .unwrap_or(8)
        .max(8);

    let mut out = String::new();
    for s in &spans {
        let self_ns = s.total_ns.saturating_sub(child_total(&spans, s));
        let pct = 100.0 * s.total_ns as f64 / root_total as f64;
        let indent = "  ".repeat(s.depth);
        let name = format!("{indent}{}", s.leaf());
        out.push_str(&format!(
            "{name:<name_width$} {:>10} {pct:>5.1}%  ×{}",
            fmt_ns(s.total_ns),
            s.count
        ));
        if self_ns != s.total_ns {
            out.push_str(&format!("   (self {})", fmt_ns(self_ns)));
        }
        out.push('\n');
    }
    out
}

/// Sum of the total times of `parent`'s direct children.
fn child_total(spans: &[SpanSnapshot], parent: &SpanSnapshot) -> u64 {
    let prefix = format!("{}/", parent.path);
    spans
        .iter()
        .filter(|s| s.depth == parent.depth + 1 && s.path.starts_with(&prefix))
        .map(|s| s.total_ns)
        .sum()
}

/// Human duration: picks ns/µs/ms/s so the mantissa stays readable.
pub fn fmt_ns(ns: u64) -> String {
    let v = ns as f64;
    if v < 1e3 {
        format!("{ns}ns")
    } else if v < 1e6 {
        format!("{:.2}µs", v / 1e3)
    } else if v < 1e9 {
        format!("{:.2}ms", v / 1e6)
    } else {
        format!("{:.2}s", v / 1e9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fmt_ns_scales() {
        assert_eq!(fmt_ns(999), "999ns");
        assert_eq!(fmt_ns(1_500), "1.50µs");
        assert_eq!(fmt_ns(2_000_000), "2.00ms");
        assert_eq!(fmt_ns(3_500_000_000), "3.50s");
    }

    #[test]
    fn flame_text_handles_empty() {
        let _g = crate::tests::GLOBAL
            .lock()
            .unwrap_or_else(|e| e.into_inner());
        crate::reset();
        assert_eq!(flame_text(), "(no spans recorded)\n");
    }
}
