//! A minimal JSON value, writer, and parser.
//!
//! The build environment is offline (the vendored `serde` is a no-op
//! marker trait — see `vendor/README.md`), so the trace exporter and the
//! `hpf-bench` harness carry their own ~200-line JSON layer. It supports
//! the full JSON grammar minus `\uXXXX` surrogate pairs (escapes decode
//! to the replacement character), which none of our documents use.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A JSON document node. Objects preserve deterministic (sorted) key
/// order via `BTreeMap`, which keeps exported files diff-stable.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Value>),
    Obj(BTreeMap<String, Value>),
}

impl Value {
    pub fn obj(entries: Vec<(&str, Value)>) -> Value {
        Value::Obj(
            entries
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect(),
        )
    }

    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(m) => m.get(key),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(a) => Some(a),
            _ => None,
        }
    }

    pub fn as_obj(&self) -> Option<&BTreeMap<String, Value>> {
        match self {
            Value::Obj(m) => Some(m),
            _ => None,
        }
    }

    /// Pretty-print with 2-space indentation and a trailing newline.
    pub fn pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: usize) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::Num(n) => write_num(out, *n),
            Value::Str(s) => write_str(out, s),
            Value::Arr(a) => {
                if a.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, v) in a.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    push_indent(out, indent + 1);
                    v.write(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push(']');
            }
            Value::Obj(m) => {
                if m.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in m.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    push_indent(out, indent + 1);
                    write_str(out, k);
                    out.push_str(": ");
                    v.write(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push('}');
            }
        }
    }
}

fn push_indent(out: &mut String, n: usize) {
    for _ in 0..n {
        out.push_str("  ");
    }
}

fn write_num(out: &mut String, n: f64) {
    if !n.is_finite() {
        out.push_str("null"); // JSON has no Inf/NaN
    } else if n == n.trunc() && n.abs() < 1e15 {
        let _ = write!(out, "{}", n as i64);
    } else {
        let _ = write!(out, "{n}");
    }
}

fn write_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parse error with a byte offset into the input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    pub offset: usize,
    pub message: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "JSON parse error at byte {}: {}",
            self.offset, self.message
        )
    }
}

impl std::error::Error for ParseError {}

/// Parse a JSON document.
pub fn parse(input: &str) -> Result<Value, ParseError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after document"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: impl Into<String>) -> ParseError {
        ParseError {
            offset: self.pos,
            message: msg.into(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected {:?}", b as char)))
        }
    }

    fn literal(&mut self, lit: &str, v: Value) -> Result<Value, ParseError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(self.err(format!("expected {lit:?}")))
        }
    }

    fn value(&mut self) -> Result<Value, ParseError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn array(&mut self) -> Result<Value, ParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Value, ParseError> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            map.insert(key, val);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(map));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            let start = self.pos;
            while let Some(c) = self.peek() {
                if c == b'"' || c == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            s.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| self.err("invalid UTF-8 in string"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => s.push('"'),
                        b'\\' => s.push('\\'),
                        b'/' => s.push('/'),
                        b'n' => s.push('\n'),
                        b'r' => s.push('\r'),
                        b't' => s.push('\t'),
                        b'b' => s.push('\u{0008}'),
                        b'f' => s.push('\u{000c}'),
                        b'u' => {
                            if self.pos + 4 > self.bytes.len() {
                                return Err(self.err("truncated \\u escape"));
                            }
                            let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
                                .ok()
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| self.err("bad \\u escape"))?;
                            self.pos += 4;
                            s.push(char::from_u32(hex).unwrap_or('\u{fffd}'));
                        }
                        other => {
                            return Err(self.err(format!("unknown escape \\{}", other as char)))
                        }
                    }
                }
                _ => return Err(self.err("unterminated string")),
            }
        }
    }

    fn number(&mut self) -> Result<Value, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.pos += 1;
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()
            .and_then(|t| t.parse::<f64>().ok())
            .map(Value::Num)
            .ok_or_else(|| self.err("invalid number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_document() {
        let doc = Value::obj(vec![
            ("name", Value::Str("bench \"quick\"\n".into())),
            ("n", Value::Num(42.0)),
            ("pi", Value::Num(3.25)),
            ("neg", Value::Num(-1.5e-3)),
            ("ok", Value::Bool(true)),
            ("none", Value::Null),
            (
                "items",
                Value::Arr(vec![
                    Value::Num(1.0),
                    Value::Str("x".into()),
                    Value::Arr(vec![]),
                ]),
            ),
            ("empty", Value::Obj(BTreeMap::new())),
        ]);
        let text = doc.pretty();
        let back = parse(&text).expect("parses");
        assert_eq!(back, doc);
    }

    #[test]
    fn parses_whitespace_and_escapes() {
        let v = parse(" { \"a\\u0041\" : [ 1 , 2.5 , -3e2 ] } ").unwrap();
        let arr = v.get("aA").and_then(|a| a.as_arr()).unwrap();
        assert_eq!(arr.len(), 3);
        assert_eq!(arr[2].as_f64(), Some(-300.0));
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("").is_err());
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("{\"a\":1} trailing").is_err());
        assert!(parse("\"unterminated").is_err());
    }

    #[test]
    fn integers_print_without_decimal() {
        assert_eq!(Value::Num(5.0).pretty().trim(), "5");
        assert_eq!(Value::Num(0.5).pretty().trim(), "0.5");
    }
}
