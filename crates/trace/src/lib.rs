//! # hpf-trace — pipeline observability
//!
//! The paper's premise is *interpreting* where time goes; this crate lets
//! the reproduction do the same to itself. It provides three pieces, all
//! dependency-free and thread-safe:
//!
//! * **Span timers** ([`span()`]) — RAII guards that time a region of code
//!   and record it under a `/`-separated path built from the enclosing
//!   spans on the same thread (`predict/compile/parse`, …).
//! * **A metrics registry** ([`counter_add`], [`gauge_set`],
//!   [`histogram_record`]) — counters, gauges, and histograms with fixed
//!   log₂-scale buckets (see [`registry::Histogram`]).
//! * **Streaming aggregation** ([`sketch_record`], [`sketch_merge`]) —
//!   mergeable quantile sketches with an exact, deterministic merge
//!   (see [`sketch::QuantileSketch`]) plus windowed rate counters
//!   ([`sketch::WindowedRate`]), the primitives behind the service's
//!   `/v1/metrics` delta export.
//! * **Exports** — a machine-readable JSON document
//!   ([`export::export_json`]) and a human-readable flamegraph-style text
//!   tree ([`export::flame_text`]).
//!
//! ## Zero overhead when disabled
//!
//! Tracing is **off** by default. Every entry point first checks a single
//! relaxed atomic flag and returns immediately when tracing is disabled:
//! no allocation, no locking, no clock reads. Instrumented code paths are
//! bit-identical to uninstrumented ones (nothing touches any RNG stream).
//!
//! ## Usage
//!
//! ```
//! hpf_trace::reset();
//! hpf_trace::enable();
//! {
//!     let _outer = hpf_trace::span("predict");
//!     let _inner = hpf_trace::span("parse");
//!     hpf_trace::counter_add("parse.stmts", 3);
//! }
//! let spans = hpf_trace::span_snapshot();
//! assert_eq!(spans.iter().map(|s| s.path.as_str()).collect::<Vec<_>>(),
//!            vec!["predict", "predict/parse"]);
//! hpf_trace::disable();
//! ```

pub mod export;
pub mod json;
pub mod registry;
pub mod sketch;
pub mod span;

pub use export::{export_json, flame_text};
pub use registry::{
    counter_add, counter_get, gauge_get, gauge_set, histogram_record, histogram_snapshot,
    sketch_merge, sketch_record, sketch_snapshot, sketches_snapshot, HistogramSnapshot,
};
pub use sketch::{QuantileSketch, WindowedRate};
pub use span::{span, span_snapshot, SpanGuard, SpanSnapshot};

use std::sync::atomic::{AtomicBool, Ordering};

static ENABLED: AtomicBool = AtomicBool::new(false);

/// Is tracing globally enabled? A single relaxed load — the only cost an
/// instrumented call site pays when tracing is off.
#[inline(always)]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Turn tracing on (spans and metrics start recording).
pub fn enable() {
    ENABLED.store(true, Ordering::SeqCst);
}

/// Turn tracing off (instrumented call sites become no-ops again).
pub fn disable() {
    ENABLED.store(false, Ordering::SeqCst);
}

/// Clear all recorded spans and metrics (the enabled flag is untouched).
pub fn reset() {
    span::reset_spans();
    registry::reset_metrics();
}

#[cfg(test)]
mod tests {
    use super::*;

    // The global trace state is shared by every test in the process, so
    // tests that enable tracing serialize on this lock.
    pub(crate) static GLOBAL: std::sync::Mutex<()> = std::sync::Mutex::new(());

    #[test]
    fn disabled_records_nothing() {
        let _g = GLOBAL.lock().unwrap_or_else(|e| e.into_inner());
        disable();
        reset();
        {
            let _s = span("ghost");
            counter_add("ghost.count", 5);
            histogram_record("ghost.hist", 1.0);
        }
        assert!(span_snapshot().is_empty());
        assert_eq!(counter_get("ghost.count"), 0);
        assert!(histogram_snapshot("ghost.hist").is_none());
    }

    #[test]
    fn nested_spans_build_paths() {
        let _g = GLOBAL.lock().unwrap_or_else(|e| e.into_inner());
        reset();
        enable();
        {
            let _a = span("outer");
            {
                let _b = span("inner");
            }
            {
                let _c = span("inner");
            }
        }
        disable();
        let snap = span_snapshot();
        let paths: Vec<(&str, u64)> = snap.iter().map(|s| (s.path.as_str(), s.count)).collect();
        assert_eq!(paths, vec![("outer", 1), ("outer/inner", 2)]);
        let outer = &snap[0];
        let inner = &snap[1];
        assert!(outer.total_ns >= inner.total_ns, "parent covers children");
    }

    #[test]
    fn concurrent_counter_increments_are_lossless() {
        let _g = GLOBAL.lock().unwrap_or_else(|e| e.into_inner());
        reset();
        enable();
        const THREADS: usize = 8;
        const PER_THREAD: u64 = 10_000;
        std::thread::scope(|s| {
            for _ in 0..THREADS {
                s.spawn(|| {
                    for _ in 0..PER_THREAD {
                        counter_add("test.concurrent", 1);
                    }
                });
            }
        });
        disable();
        assert_eq!(counter_get("test.concurrent"), THREADS as u64 * PER_THREAD);
    }

    #[test]
    fn spans_on_threads_do_not_interleave_paths() {
        let _g = GLOBAL.lock().unwrap_or_else(|e| e.into_inner());
        reset();
        enable();
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    let _a = span("worker");
                    let _b = span("step");
                });
            }
        });
        disable();
        let snap = span_snapshot();
        let paths: Vec<&str> = snap.iter().map(|s| s.path.as_str()).collect();
        assert_eq!(paths, vec!["worker", "worker/step"]);
        assert!(snap.iter().all(|s| s.count == 4));
    }

    #[test]
    fn export_json_parses_back() {
        let _g = GLOBAL.lock().unwrap_or_else(|e| e.into_inner());
        reset();
        enable();
        {
            let _s = span("stage");
            counter_add("n.things", 7);
            gauge_set("depth", 3.5);
            histogram_record("lat", 0.25);
        }
        disable();
        let doc = export_json();
        let v = json::parse(&doc).expect("export is valid JSON");
        assert_eq!(
            v.get("schema").and_then(|s| s.as_str()),
            Some("hpf-trace/v1")
        );
        assert_eq!(
            v.get("counters")
                .and_then(|c| c.get("n.things"))
                .and_then(|n| n.as_f64()),
            Some(7.0)
        );
        let flame = flame_text();
        assert!(flame.contains("stage"), "{flame}");
    }
}
