//! Thread-safe metrics registry: counters, gauges, and fixed log₂-bucket
//! histograms. Metric names are free-form `&'static str`s (dotted
//! convention: `sim.fault.retries`). Everything is process-global and
//! cleared by [`crate::reset`].

use crate::sketch::QuantileSketch;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Number of histogram buckets. Bucket `i` covers durations/values in
/// `[2^i, 2^(i+1))` nanoseconds-equivalent units (see [`Histogram`]).
pub const HISTOGRAM_BUCKETS: usize = 64;

/// A histogram with fixed log₂-scale buckets.
///
/// Values are f64s in *seconds* (or any unit — the bucketing is relative
/// to [`Histogram::UNIT`]). Bucket `i` covers `[UNIT·2^i, UNIT·2^(i+1))`
/// with `UNIT` = 1 ns, so the 64 buckets span 1 ns … ~584 years; values
/// below the first bound clamp into bucket 0 and values above the last
/// bound clamp into the final bucket.
#[derive(Debug)]
pub struct Histogram {
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    /// Sum of recorded values, in nanosecond-equivalent integer units
    /// (good for ~584 years of accumulated time at 1 ns resolution).
    sum_units: AtomicU64,
    /// Bit-patterns of the f64 min/max, maintained by CAS.
    min_bits: AtomicU64,
    max_bits: AtomicU64,
}

impl Histogram {
    /// The value mapped to bucket 0's lower bound: one nanosecond.
    pub const UNIT: f64 = 1e-9;

    fn new() -> Self {
        Histogram {
            buckets: (0..HISTOGRAM_BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum_units: AtomicU64::new(0),
            min_bits: AtomicU64::new(f64::INFINITY.to_bits()),
            max_bits: AtomicU64::new(f64::NEG_INFINITY.to_bits()),
        }
    }

    /// The bucket a value falls into: `floor(log2(v / UNIT))`, clamped.
    pub fn bucket_index(value: f64) -> usize {
        if value.is_nan() || value <= Self::UNIT {
            return 0;
        }
        let exp = (value / Self::UNIT).log2().floor();
        (exp as usize).min(HISTOGRAM_BUCKETS - 1)
    }

    /// Inclusive lower bound of bucket `i`.
    pub fn bucket_lower(i: usize) -> f64 {
        Self::UNIT * (i as f64).exp2()
    }

    /// Exclusive upper bound of bucket `i`.
    pub fn bucket_upper(i: usize) -> f64 {
        Self::UNIT * ((i + 1) as f64).exp2()
    }

    fn record(&self, value: f64) {
        let v = if value.is_finite() {
            value.max(0.0)
        } else {
            0.0
        };
        self.buckets[Self::bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum_units
            .fetch_add((v / Self::UNIT) as u64, Ordering::Relaxed);
        update_extreme(&self.min_bits, v, |new, cur| new < cur);
        update_extreme(&self.max_bits, v, |new, cur| new > cur);
    }

    fn snapshot(&self) -> HistogramSnapshot {
        let buckets: Vec<u64> = self
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        let count = self.count.load(Ordering::Relaxed);
        HistogramSnapshot {
            count,
            sum: self.sum_units.load(Ordering::Relaxed) as f64 * Self::UNIT,
            min: f64::from_bits(self.min_bits.load(Ordering::Relaxed)),
            max: f64::from_bits(self.max_bits.load(Ordering::Relaxed)),
            buckets,
        }
    }
}

/// Monotonic CAS update of an f64 stored as bits.
fn update_extreme(cell: &AtomicU64, value: f64, better: impl Fn(f64, f64) -> bool) {
    let mut cur = cell.load(Ordering::Relaxed);
    while better(value, f64::from_bits(cur)) {
        match cell.compare_exchange_weak(cur, value.to_bits(), Ordering::Relaxed, Ordering::Relaxed)
        {
            Ok(_) => break,
            Err(seen) => cur = seen,
        }
    }
}

/// Point-in-time view of one histogram.
#[derive(Debug, Clone)]
pub struct HistogramSnapshot {
    pub count: u64,
    /// Sum of recorded values (1 ns resolution).
    pub sum: f64,
    pub min: f64,
    pub max: f64,
    /// Per-bucket counts; bucket `i` covers
    /// [`Histogram::bucket_lower(i)`, `Histogram::bucket_upper(i)`).
    pub buckets: Vec<u64>,
}

impl HistogramSnapshot {
    /// Estimated quantile (`0.0 ..= 1.0`) by linear interpolation inside
    /// the covering bucket, clamped to the observed min/max.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let target = (q.clamp(0.0, 1.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            if c == 0 {
                continue;
            }
            if seen + c >= target {
                let frac = (target - seen) as f64 / c as f64;
                let lo = Histogram::bucket_lower(i);
                let hi = Histogram::bucket_upper(i);
                return (lo + frac * (hi - lo)).clamp(self.min, self.max);
            }
            seen += c;
        }
        self.max
    }

    /// Mean of recorded values.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }
}

#[derive(Default)]
struct Registry {
    counters: BTreeMap<&'static str, Arc<AtomicU64>>,
    gauges: BTreeMap<&'static str, f64>,
    histograms: BTreeMap<&'static str, Arc<Histogram>>,
    /// Quantile sketches keyed by owned names — sketch names are often
    /// built at runtime (`serve.latency.kernel.<name>`), unlike the
    /// `&'static str` counter/histogram keys.
    sketches: BTreeMap<String, Arc<Mutex<QuantileSketch>>>,
}

static REGISTRY: Mutex<Option<Registry>> = Mutex::new(None);

fn with_registry<T>(f: impl FnOnce(&mut Registry) -> T) -> T {
    let mut guard = REGISTRY.lock().unwrap_or_else(|e| e.into_inner());
    f(guard.get_or_insert_with(Registry::default))
}

/// Add `delta` to the counter `name`. No-op while tracing is disabled.
#[inline]
pub fn counter_add(name: &'static str, delta: u64) {
    if !crate::enabled() {
        return;
    }
    let cell = with_registry(|r| r.counters.entry(name).or_default().clone());
    cell.fetch_add(delta, Ordering::Relaxed);
}

/// Current value of a counter (0 if never written).
pub fn counter_get(name: &str) -> u64 {
    with_registry(|r| {
        r.counters
            .get(name)
            .map(|c| c.load(Ordering::Relaxed))
            .unwrap_or(0)
    })
}

/// Set the gauge `name`. No-op while tracing is disabled.
#[inline]
pub fn gauge_set(name: &'static str, value: f64) {
    if !crate::enabled() {
        return;
    }
    with_registry(|r| {
        r.gauges.insert(name, value);
    });
}

/// Current value of a gauge.
pub fn gauge_get(name: &str) -> Option<f64> {
    with_registry(|r| r.gauges.get(name).copied())
}

/// Record `value` into the histogram `name`. No-op while tracing is
/// disabled.
#[inline]
pub fn histogram_record(name: &'static str, value: f64) {
    if !crate::enabled() {
        return;
    }
    let h = with_registry(|r| {
        r.histograms
            .entry(name)
            .or_insert_with(|| Arc::new(Histogram::new()))
            .clone()
    });
    h.record(value);
}

/// Snapshot of the histogram `name`, if it has ever been written.
pub fn histogram_snapshot(name: &str) -> Option<HistogramSnapshot> {
    with_registry(|r| r.histograms.get(name).map(|h| h.snapshot()))
}

/// Record `value` into the mergeable quantile sketch `name`. No-op while
/// tracing is disabled. Unlike [`histogram_record`], the name may be
/// built at runtime (per-kernel breakdowns).
#[inline]
pub fn sketch_record(name: &str, value: f64) {
    if !crate::enabled() {
        return;
    }
    let s = with_registry(|r| match r.sketches.get(name) {
        Some(s) => s.clone(),
        None => {
            let s = Arc::new(Mutex::new(QuantileSketch::new()));
            r.sketches.insert(name.to_string(), s.clone());
            s
        }
    });
    s.lock().unwrap_or_else(|e| e.into_inner()).record(value);
}

/// Merge a locally-accumulated sketch into the registry sketch `name`.
/// No-op while tracing is disabled. This is the shard pattern: writers
/// own a private sketch (no contention) and fold it in when done; the
/// result is exactly the sketch a single shared writer would have built.
#[inline]
pub fn sketch_merge(name: &str, shard: &QuantileSketch) {
    if !crate::enabled() {
        return;
    }
    let s = with_registry(|r| match r.sketches.get(name) {
        Some(s) => s.clone(),
        None => {
            let s = Arc::new(Mutex::new(QuantileSketch::new()));
            r.sketches.insert(name.to_string(), s.clone());
            s
        }
    });
    s.lock().unwrap_or_else(|e| e.into_inner()).merge(shard);
}

/// Clone of the sketch `name`, if it has ever been written.
pub fn sketch_snapshot(name: &str) -> Option<QuantileSketch> {
    with_registry(|r| {
        r.sketches
            .get(name)
            .map(|s| s.lock().unwrap_or_else(|e| e.into_inner()).clone())
    })
}

/// All sketches, sorted by name.
pub fn sketches_snapshot() -> Vec<(String, QuantileSketch)> {
    with_registry(|r| {
        r.sketches
            .iter()
            .map(|(k, s)| {
                (
                    k.clone(),
                    s.lock().unwrap_or_else(|e| e.into_inner()).clone(),
                )
            })
            .collect()
    })
}

/// All counters, sorted by name.
pub fn counters_snapshot() -> Vec<(String, u64)> {
    with_registry(|r| {
        r.counters
            .iter()
            .map(|(k, v)| (k.to_string(), v.load(Ordering::Relaxed)))
            .collect()
    })
}

/// All gauges, sorted by name.
pub fn gauges_snapshot() -> Vec<(String, f64)> {
    with_registry(|r| r.gauges.iter().map(|(k, v)| (k.to_string(), *v)).collect())
}

/// All histograms, sorted by name.
pub fn histograms_snapshot() -> Vec<(String, HistogramSnapshot)> {
    with_registry(|r| {
        r.histograms
            .iter()
            .map(|(k, h)| (k.to_string(), h.snapshot()))
            .collect()
    })
}

pub(crate) fn reset_metrics() {
    let mut guard = REGISTRY.lock().unwrap_or_else(|e| e.into_inner());
    *guard = Some(Registry::default());
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries_are_log2_exact() {
        // 2^i ns lands exactly on bucket i's lower bound.
        for i in [0usize, 1, 5, 10, 20, 30] {
            let lower = Histogram::bucket_lower(i);
            assert_eq!(
                Histogram::bucket_index(lower),
                i,
                "lower bound of bucket {i}"
            );
            // Just below the bound falls into the previous bucket.
            if i > 0 {
                assert_eq!(
                    Histogram::bucket_index(lower * (1.0 - 1e-12)),
                    i - 1,
                    "below lower bound of bucket {i}"
                );
            }
            // Just below the upper bound stays in bucket i.
            let upper = Histogram::bucket_upper(i);
            assert_eq!(
                Histogram::bucket_index(upper * (1.0 - 1e-12)),
                i,
                "upper interior of bucket {i}"
            );
        }
        // Clamping: zero / negative / tiny → bucket 0; huge → last bucket.
        assert_eq!(Histogram::bucket_index(0.0), 0);
        assert_eq!(Histogram::bucket_index(-3.0), 0);
        assert_eq!(Histogram::bucket_index(1e-12), 0);
        assert_eq!(Histogram::bucket_index(f64::MAX), HISTOGRAM_BUCKETS - 1);
    }

    #[test]
    fn histogram_quantiles_and_stats() {
        let _g = crate::tests::GLOBAL
            .lock()
            .unwrap_or_else(|e| e.into_inner());
        crate::reset();
        crate::enable();
        // 90 values at ~1 ms, 10 at ~1 s: p50 ≈ ms-scale, p95+ ≈ s-scale.
        for _ in 0..90 {
            histogram_record("t.h", 1e-3);
        }
        for _ in 0..10 {
            histogram_record("t.h", 1.0);
        }
        crate::disable();
        let h = histogram_snapshot("t.h").unwrap();
        assert_eq!(h.count, 100);
        assert!((h.mean() - (90.0 * 1e-3 + 10.0) / 100.0).abs() < 1e-4);
        assert_eq!(h.min, 1e-3);
        assert_eq!(h.max, 1.0);
        let p50 = h.quantile(0.50);
        assert!(p50 < 5e-3, "p50 {p50} should sit in the ms bucket");
        let p99 = h.quantile(0.99);
        assert!(p99 > 0.5, "p99 {p99} should sit in the s bucket");
    }

    #[test]
    fn concurrent_histogram_records_count_correctly() {
        let _g = crate::tests::GLOBAL
            .lock()
            .unwrap_or_else(|e| e.into_inner());
        crate::reset();
        crate::enable();
        std::thread::scope(|s| {
            for t in 0..4 {
                s.spawn(move || {
                    for i in 0..1000 {
                        histogram_record("t.conc", 1e-6 * (t * 1000 + i) as f64);
                    }
                });
            }
        });
        crate::disable();
        let h = histogram_snapshot("t.conc").unwrap();
        assert_eq!(h.count, 4000);
        assert_eq!(h.buckets.iter().sum::<u64>(), 4000);
        assert_eq!(h.min, 0.0);
    }
}
