//! Mergeable quantile sketches and windowed rate counters — the
//! streaming-aggregation primitives behind `/v1/metrics` deltas and the
//! loadgen's shard-merged latency percentiles.
//!
//! ## Why a sketch and not a sample vector
//!
//! Raw latency vectors grow with traffic and cannot be combined across
//! shards without re-sorting everything. A [`QuantileSketch`] is a fixed
//! 512-slot array (64 log₂ major buckets × [`SUB_BUCKETS`] linear
//! sub-buckets, HDR-histogram style) whose layout is *value-determined*:
//! a value lands in the same slot no matter which shard records it or
//! when. Merging two sketches is therefore element-wise integer addition
//! — **exact, deterministic, and invariant under merge order and shard
//! count**, which is what lets per-client loadgen shards, per-worker
//! service shards, and cursor-delta subtraction all agree bit-for-bit.
//! Relative quantile error is bounded by the sub-bucket width: ≤ 1/8 of
//! a factor-two bucket, ~12% worst case, far inside the run-to-run noise
//! of any latency measurement.
//!
//! The sketch is a plain value type (no atomics): writers own one each
//! (per thread, per shard) and merge, or share one behind the registry's
//! lock ([`crate::sketch_record`]).

use crate::json::Value;

/// Log₂ major buckets (same span as [`crate::registry::Histogram`]:
/// 1 ns … ~584 years).
pub const MAJOR_BUCKETS: usize = 64;

/// Linear sub-buckets per major bucket. Eight gives ≤ 12.5% relative
/// resolution while keeping the sketch 4 KiB.
pub const SUB_BUCKETS: usize = 8;

/// Total slots in the fixed layout.
pub const SKETCH_SLOTS: usize = MAJOR_BUCKETS * SUB_BUCKETS;

/// A mergeable fixed-layout quantile sketch over f64 values in seconds.
#[derive(Debug, Clone, PartialEq)]
pub struct QuantileSketch {
    buckets: Vec<u64>,
    count: u64,
    /// Sum of recorded values in 1 ns integer units (exact under merge).
    sum_units: u64,
    min: f64,
    max: f64,
}

impl Default for QuantileSketch {
    fn default() -> Self {
        Self::new()
    }
}

impl QuantileSketch {
    /// The value mapped to slot 0's lower bound: one nanosecond.
    pub const UNIT: f64 = 1e-9;

    pub fn new() -> QuantileSketch {
        QuantileSketch {
            buckets: vec![0; SKETCH_SLOTS],
            count: 0,
            sum_units: 0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// The slot a value falls into. The layout is fixed: `major =
    /// ⌊log₂(v/UNIT)⌋`, then a linear split of `[2^major, 2^(major+1))`
    /// into [`SUB_BUCKETS`] equal slices.
    pub fn slot_index(value: f64) -> usize {
        let units = value / Self::UNIT;
        if value.is_nan() || units <= 1.0 {
            return 0;
        }
        let major = (units.log2().floor() as usize).min(MAJOR_BUCKETS - 1);
        let base = (major as f64).exp2();
        let sub = (((units / base) - 1.0) * SUB_BUCKETS as f64) as usize;
        major * SUB_BUCKETS + sub.min(SUB_BUCKETS - 1)
    }

    /// Inclusive lower bound of slot `i`, seconds.
    pub fn slot_lower(i: usize) -> f64 {
        let (major, sub) = (i / SUB_BUCKETS, i % SUB_BUCKETS);
        Self::UNIT * (major as f64).exp2() * (1.0 + sub as f64 / SUB_BUCKETS as f64)
    }

    /// Exclusive upper bound of slot `i`, seconds.
    pub fn slot_upper(i: usize) -> f64 {
        Self::slot_lower(i + 1)
    }

    /// Record one value (clamped to ≥ 0; NaN/∞ clamp to 0).
    pub fn record(&mut self, value: f64) {
        let v = if value.is_finite() {
            value.max(0.0)
        } else {
            0.0
        };
        self.buckets[Self::slot_index(v)] += 1;
        self.count += 1;
        self.sum_units = self.sum_units.saturating_add((v / Self::UNIT) as u64);
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Merge `other` into `self`: element-wise addition over the fixed
    /// layout — exact, and invariant under merge order and shard count.
    pub fn merge(&mut self, other: &QuantileSketch) {
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        self.count += other.count;
        self.sum_units = self.sum_units.saturating_add(other.sum_units);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// The sketch that takes this one from `earlier` to `self`:
    /// element-wise saturating subtraction. Buckets, count, and sum are
    /// exact; the min/max of the delta window are unknowable from the
    /// endpoints alone, so they are re-derived from the delta's occupied
    /// slot bounds (quantiles of a delta carry up to one sub-bucket of
    /// extra clamp slack at the extremes).
    pub fn delta_since(&self, earlier: &QuantileSketch) -> QuantileSketch {
        let mut d = QuantileSketch::new();
        for (i, (a, b)) in self.buckets.iter().zip(&earlier.buckets).enumerate() {
            d.buckets[i] = a.saturating_sub(*b);
            if d.buckets[i] > 0 {
                d.min = d.min.min(Self::slot_lower(i));
                d.max = d.max.max(Self::slot_upper(i));
            }
        }
        d.count = self.count.saturating_sub(earlier.count);
        d.sum_units = self.sum_units.saturating_sub(earlier.sum_units);
        d
    }

    pub fn count(&self) -> u64 {
        self.count
    }

    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Sum of recorded values, seconds (1 ns resolution).
    pub fn sum(&self) -> f64 {
        self.sum_units as f64 * Self::UNIT
    }

    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum() / self.count as f64
        }
    }

    /// Smallest recorded value (0.0 when empty).
    pub fn min(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.min
        }
    }

    /// Largest recorded value (0.0 when empty).
    pub fn max(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.max
        }
    }

    /// Estimated quantile (`0.0 ..= 1.0`): linear interpolation inside
    /// the covering slot, clamped to the observed min/max.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let target = (q.clamp(0.0, 1.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            if c == 0 {
                continue;
            }
            if seen + c >= target {
                let frac = (target - seen) as f64 / c as f64;
                let lo = Self::slot_lower(i);
                let hi = Self::slot_upper(i);
                return (lo + frac * (hi - lo)).clamp(self.min, self.max);
            }
            seen += c;
        }
        self.max
    }

    /// Serialize as a JSON value: summary quantiles plus the sparse
    /// occupied slots (`[slot, count]` pairs), from which
    /// [`QuantileSketch::from_value`] reconstructs the sketch exactly.
    pub fn to_value(&self) -> Value {
        let buckets: Vec<Value> = self
            .buckets
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| Value::Arr(vec![Value::Num(i as f64), Value::Num(c as f64)]))
            .collect();
        Value::obj(vec![
            ("count", Value::Num(self.count as f64)),
            ("sum_s", Value::Num(self.sum())),
            ("min_s", Value::Num(self.min())),
            ("max_s", Value::Num(self.max())),
            ("p50_s", Value::Num(self.quantile(0.50))),
            ("p95_s", Value::Num(self.quantile(0.95))),
            ("p99_s", Value::Num(self.quantile(0.99))),
            ("p999_s", Value::Num(self.quantile(0.999))),
            ("buckets", Value::Arr(buckets)),
        ])
    }

    /// Parse a value written by [`QuantileSketch::to_value`].
    pub fn from_value(v: &Value) -> Result<QuantileSketch, String> {
        let mut s = QuantileSketch::new();
        s.count = v
            .get("count")
            .and_then(Value::as_f64)
            .ok_or("sketch missing count")? as u64;
        let sum_s = v.get("sum_s").and_then(Value::as_f64).unwrap_or(0.0);
        s.sum_units = (sum_s / Self::UNIT).round().max(0.0) as u64;
        for pair in v
            .get("buckets")
            .and_then(Value::as_arr)
            .ok_or("sketch missing buckets")?
        {
            let pair = pair.as_arr().ok_or("malformed sketch bucket")?;
            let (Some(slot), Some(count)) = (
                pair.first().and_then(Value::as_f64),
                pair.get(1).and_then(Value::as_f64),
            ) else {
                return Err("malformed sketch bucket".into());
            };
            let slot = slot as usize;
            if slot >= SKETCH_SLOTS {
                return Err(format!("sketch slot {slot} out of range"));
            }
            s.buckets[slot] = count as u64;
        }
        if s.count > 0 {
            s.min = v.get("min_s").and_then(Value::as_f64).unwrap_or(0.0);
            s.max = v.get("max_s").and_then(Value::as_f64).unwrap_or(0.0);
        }
        Ok(s)
    }
}

/// A windowed event-rate counter: a ring of fixed-width time slots, so
/// "requests per second over the last N seconds" is cheap to maintain
/// and immune to unbounded growth. Timestamps are caller-supplied
/// milliseconds from an arbitrary origin, which keeps the type clock-free
/// and deterministic under test.
#[derive(Debug, Clone)]
pub struct WindowedRate {
    slot_ms: u64,
    /// `(slot id, count)` per ring position; a stale id means the slot
    /// has wrapped and its count belongs to a dead window.
    ring: Vec<(u64, u64)>,
}

impl WindowedRate {
    /// `slots` windows of `slot_ms` each (e.g. `new(1_000, 10)` = a 10 s
    /// window at 1 s resolution).
    pub fn new(slot_ms: u64, slots: usize) -> WindowedRate {
        WindowedRate {
            slot_ms: slot_ms.max(1),
            ring: vec![(u64::MAX, 0); slots.max(1)],
        }
    }

    /// Record `n` events at time `t_ms`.
    pub fn add(&mut self, t_ms: u64, n: u64) {
        let slot = t_ms / self.slot_ms;
        let pos = (slot % self.ring.len() as u64) as usize;
        if self.ring[pos].0 != slot {
            self.ring[pos] = (slot, 0);
        }
        self.ring[pos].1 += n;
    }

    /// Events inside the window ending at `t_ms`.
    pub fn window_count(&self, t_ms: u64) -> u64 {
        let cur = t_ms / self.slot_ms;
        let oldest = cur.saturating_sub(self.ring.len() as u64 - 1);
        self.ring
            .iter()
            .filter(|(slot, _)| *slot >= oldest && *slot <= cur)
            .map(|(_, c)| c)
            .sum()
    }

    /// Events per second over the window ending at `t_ms`. Early in a
    /// process's life only the elapsed portion of the window divides, so
    /// a fresh counter is not biased toward zero.
    pub fn rate_per_s(&self, t_ms: u64) -> f64 {
        let window_ms = (self.ring.len() as u64 * self.slot_ms).min(t_ms.max(self.slot_ms));
        self.window_count(t_ms) as f64 * 1e3 / window_ms as f64
    }

    /// The window width, seconds.
    pub fn window_s(&self) -> f64 {
        (self.ring.len() as u64 * self.slot_ms) as f64 / 1e3
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slot_layout_is_monotone_and_exhaustive() {
        let mut prev = -1.0f64;
        for i in 0..SKETCH_SLOTS {
            let lo = QuantileSketch::slot_lower(i);
            assert!(lo > prev, "slot {i} lower bound not increasing");
            prev = lo;
            // The lower bound itself maps back into the slot.
            if i > 0 {
                assert_eq!(QuantileSketch::slot_index(lo), i, "lower bound of slot {i}");
            }
            // Just under the upper bound stays in the slot (float error
            // aside at extreme magnitudes).
            if i < SKETCH_SLOTS - 1 && i > 0 && i < 400 {
                let interior = lo + 0.5 * (QuantileSketch::slot_upper(i) - lo);
                assert_eq!(QuantileSketch::slot_index(interior), i, "interior of {i}");
            }
        }
        assert_eq!(QuantileSketch::slot_index(0.0), 0);
        assert_eq!(QuantileSketch::slot_index(-1.0), 0);
        assert_eq!(QuantileSketch::slot_index(f64::NAN), 0);
        assert_eq!(QuantileSketch::slot_index(f64::MAX), SKETCH_SLOTS - 1);
    }

    #[test]
    fn sub_buckets_resolve_finer_than_log2() {
        // 1.0 ms and 1.3 ms share a log₂ bucket but not a slot.
        assert_ne!(
            QuantileSketch::slot_index(1.0e-3),
            QuantileSketch::slot_index(1.3e-3)
        );
    }

    #[test]
    fn merge_equals_single_sketch() {
        let values: Vec<f64> = (0..1000).map(|i| 1e-6 * (1.0 + i as f64)).collect();
        let mut whole = QuantileSketch::new();
        for &v in &values {
            whole.record(v);
        }
        for shards in [1usize, 2, 3, 7] {
            let mut parts: Vec<QuantileSketch> =
                (0..shards).map(|_| QuantileSketch::new()).collect();
            for (i, &v) in values.iter().enumerate() {
                parts[i % shards].record(v);
            }
            // Merge in reverse order, to boot.
            let mut merged = QuantileSketch::new();
            for p in parts.iter().rev() {
                merged.merge(p);
            }
            assert_eq!(merged, whole, "{shards} shards");
        }
    }

    #[test]
    fn quantiles_land_in_the_right_decade() {
        let mut s = QuantileSketch::new();
        for _ in 0..900 {
            s.record(1e-3);
        }
        for _ in 0..100 {
            s.record(1.0);
        }
        assert_eq!(s.count(), 1000);
        let p50 = s.quantile(0.50);
        assert!((5e-4..5e-3).contains(&p50), "p50 {p50}");
        let p99 = s.quantile(0.99);
        assert!(p99 > 0.5, "p99 {p99}");
        assert_eq!(s.quantile(1.0), 1.0);
        assert!((s.mean() - (0.9e-3 + 0.1)).abs() < 1e-4);
    }

    #[test]
    fn json_roundtrip_is_exact() {
        let mut s = QuantileSketch::new();
        for i in 0..500 {
            s.record(1e-5 * (1 + i % 37) as f64);
        }
        let text = s.to_value().pretty();
        let back =
            QuantileSketch::from_value(&crate::json::parse(&text).expect("parses")).expect("loads");
        assert_eq!(back, s);
        assert!(QuantileSketch::from_value(&Value::obj(vec![])).is_err());
    }

    #[test]
    fn delta_since_recovers_the_window() {
        let mut early = QuantileSketch::new();
        for _ in 0..10 {
            early.record(2e-3);
        }
        let mut late = early.clone();
        for _ in 0..5 {
            late.record(0.5);
        }
        let d = late.delta_since(&early);
        assert_eq!(d.count(), 5);
        let p50 = d.quantile(0.5);
        assert!((0.2..0.8).contains(&p50), "delta p50 {p50}");
        // Deltas telescope: early + d has the same buckets as late.
        let mut recombined = early.clone();
        recombined.merge(&d);
        assert_eq!(recombined.count(), late.count());
        assert_eq!(recombined.buckets, late.buckets);
    }

    #[test]
    fn windowed_rate_counts_only_the_window() {
        let mut r = WindowedRate::new(1_000, 10);
        for t in 0..30 {
            r.add(t * 1_000, 100);
        }
        // At t=29.999 s the live window is exactly slots 20..=29.
        assert_eq!(r.window_count(29_999), 1000);
        assert!((r.rate_per_s(29_999) - 100.0).abs() < 1e-9);
        // One second later slot 20 has aged out and slot 30 is empty.
        assert_eq!(r.window_count(30_999), 900);
        // Idle time decays the rate to zero.
        assert_eq!(r.window_count(60_000), 0);
        assert_eq!(r.rate_per_s(60_000), 0.0);
    }

    #[test]
    fn windowed_rate_fresh_counter_is_not_biased_to_zero() {
        let mut r = WindowedRate::new(1_000, 10);
        r.add(500, 50);
        // Only 1 s of the 10 s window has existed; 50 events in it.
        let rate = r.rate_per_s(999);
        assert!((rate - 50.0).abs() < 1.0, "{rate}");
    }
}
