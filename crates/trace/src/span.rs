//! RAII span timers with per-thread nesting.
//!
//! A [`span()`] guard times the region from its creation to its drop and
//! records the duration under a path composed of the names of every span
//! still open on the same thread (`a/b/c`). Aggregation happens at record
//! time — the global store keeps one statistics cell per distinct path, so
//! a span executed a million times costs one map entry, not a million.

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::sync::Mutex;
use std::time::Instant;

/// Aggregated statistics for one span path.
#[derive(Debug, Clone, Default)]
struct SpanStat {
    count: u64,
    total_ns: u64,
    min_ns: u64,
    max_ns: u64,
}

static SPANS: Mutex<BTreeMap<String, SpanStat>> = Mutex::new(BTreeMap::new());

thread_local! {
    /// Names of the spans currently open on this thread, outermost first.
    static STACK: RefCell<Vec<&'static str>> = const { RefCell::new(Vec::new()) };
}

/// One aggregated span as returned by [`span_snapshot`].
#[derive(Debug, Clone, PartialEq)]
pub struct SpanSnapshot {
    /// `/`-separated nesting path, e.g. `predict/compile/parse`.
    pub path: String,
    /// Nesting depth (number of `/` components minus one).
    pub depth: usize,
    /// Number of times the span closed.
    pub count: u64,
    /// Total time across all executions, nanoseconds.
    pub total_ns: u64,
    pub min_ns: u64,
    pub max_ns: u64,
}

impl SpanSnapshot {
    /// Total time in seconds.
    pub fn total_s(&self) -> f64 {
        self.total_ns as f64 / 1e9
    }

    /// Leaf name (last path component).
    pub fn leaf(&self) -> &str {
        self.path.rsplit('/').next().unwrap_or(&self.path)
    }
}

/// Guard returned by [`span()`]; records the elapsed time when dropped.
/// When tracing is disabled at creation the guard is inert.
#[must_use = "a span guard times the region until it is dropped"]
pub struct SpanGuard {
    name: &'static str,
    start: Option<Instant>,
}

/// Open a span named `name`. Returns an inert guard when tracing is
/// disabled — the only cost is one relaxed atomic load.
#[inline]
pub fn span(name: &'static str) -> SpanGuard {
    if !crate::enabled() {
        return SpanGuard { name, start: None };
    }
    STACK.with(|s| s.borrow_mut().push(name));
    SpanGuard {
        name,
        start: Some(Instant::now()),
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(start) = self.start else { return };
        let dur_ns = start.elapsed().as_nanos().min(u64::MAX as u128) as u64;
        let path = STACK.with(|s| {
            let mut stack = s.borrow_mut();
            // Scoped guards drop LIFO; tolerate a mismatched drop order by
            // popping back to this span's frame.
            while let Some(top) = stack.pop() {
                if std::ptr::eq(top, self.name) || top == self.name {
                    break;
                }
            }
            if stack.is_empty() {
                self.name.to_string()
            } else {
                let mut p = stack.join("/");
                p.push('/');
                p.push_str(self.name);
                p
            }
        });
        let mut spans = SPANS.lock().unwrap_or_else(|e| e.into_inner());
        let st = spans.entry(path).or_default();
        st.count += 1;
        st.total_ns += dur_ns;
        st.max_ns = st.max_ns.max(dur_ns);
        st.min_ns = if st.count == 1 {
            dur_ns
        } else {
            st.min_ns.min(dur_ns)
        };
    }
}

/// All aggregated spans, sorted by path (parents sort before children).
pub fn span_snapshot() -> Vec<SpanSnapshot> {
    let spans = SPANS.lock().unwrap_or_else(|e| e.into_inner());
    spans
        .iter()
        .map(|(path, st)| SpanSnapshot {
            depth: path.matches('/').count(),
            path: path.clone(),
            count: st.count,
            total_ns: st.total_ns,
            min_ns: st.min_ns,
            max_ns: st.max_ns,
        })
        .collect()
}

pub(crate) fn reset_spans() {
    SPANS.lock().unwrap_or_else(|e| e.into_inner()).clear();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn leaf_name_extraction() {
        let s = SpanSnapshot {
            path: "a/b/c".into(),
            depth: 2,
            count: 1,
            total_ns: 10,
            min_ns: 10,
            max_ns: 10,
        };
        assert_eq!(s.leaf(), "c");
        assert_eq!(s.total_s(), 1e-8);
    }
}
