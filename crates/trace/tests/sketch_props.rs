//! Property tests for the mergeable quantile sketch: the merge must be
//! exact and invariant under merge order and shard count, the JSON
//! roundtrip must be lossless, and cursor deltas must telescope. These
//! are the invariants the service's `/v1/metrics?since=` export and the
//! loadgen's shard-merged percentiles lean on.

use hpf_trace::sketch::QuantileSketch;
use proptest::prelude::*;

/// Build one sketch over all values sequentially.
fn whole(values: &[f64]) -> QuantileSketch {
    let mut s = QuantileSketch::new();
    for &v in values {
        s.record(v);
    }
    s
}

/// Round-robin the values over `shards` sketches, then merge them in the
/// given order permutation (rotation by `rot`).
fn sharded(values: &[f64], shards: usize, rot: usize) -> QuantileSketch {
    let mut parts: Vec<QuantileSketch> = (0..shards).map(|_| QuantileSketch::new()).collect();
    for (i, &v) in values.iter().enumerate() {
        parts[i % shards].record(v);
    }
    let mut merged = QuantileSketch::new();
    for k in 0..shards {
        merged.merge(&parts[(k + rot) % shards]);
    }
    merged
}

proptest! {
    /// Shard-count invariance: splitting a value stream over any number
    /// of shards and merging reproduces the single-writer sketch
    /// exactly — buckets, count, sum, min, max, every quantile.
    #[test]
    fn merge_is_shard_count_invariant(
        values in proptest::collection::vec(1e-9f64..10.0, 1..400),
        shards in 1usize..9,
    ) {
        prop_assert_eq!(sharded(&values, shards, 0), whole(&values));
    }

    /// Merge-order invariance: folding the same shards in a rotated
    /// order yields the identical sketch.
    #[test]
    fn merge_is_order_invariant(
        values in proptest::collection::vec(1e-9f64..10.0, 1..400),
        shards in 2usize..8,
        rot in 0usize..8,
    ) {
        prop_assert_eq!(sharded(&values, shards, rot % shards), sharded(&values, shards, 0));
    }

    /// The sparse JSON encoding reconstructs the sketch exactly (modulo
    /// min/max, which serialize at f64 text precision — counts, buckets
    /// and quantile structure are integer-exact).
    #[test]
    fn json_roundtrip_preserves_structure(
        values in proptest::collection::vec(1e-9f64..100.0, 0..200),
    ) {
        let s = whole(&values);
        let text = s.to_value().pretty();
        let back = QuantileSketch::from_value(
            &hpf_trace::json::parse(&text).expect("export parses"),
        ).expect("sketch loads");
        prop_assert_eq!(back.count(), s.count());
        prop_assert_eq!(back.quantile(0.5).to_bits(), s.quantile(0.5).to_bits());
        prop_assert_eq!(back.quantile(0.99).to_bits(), s.quantile(0.99).to_bits());
        prop_assert_eq!(back.sum().to_bits(), s.sum().to_bits());
    }

    /// Deltas telescope: for any split point, delta_since(prefix) merged
    /// back onto the prefix reproduces the full sketch — count and sum
    /// exactly, quantiles to within the delta's slot-bound clamp slack
    /// (min/max of a window are re-derived from bucket bounds, ≤ 12.5%).
    #[test]
    fn deltas_telescope(
        values in proptest::collection::vec(1e-9f64..10.0, 1..300),
        split_pct in 0usize..101,
    ) {
        let split = values.len() * split_pct / 100;
        let prefix = whole(&values[..split]);
        let full = whole(&values);
        let delta = full.delta_since(&prefix);
        prop_assert_eq!(delta.count(), (values.len() - split) as u64);
        let mut recombined = prefix.clone();
        recombined.merge(&delta);
        prop_assert_eq!(recombined.count(), full.count());
        prop_assert_eq!(recombined.sum().to_bits(), full.sum().to_bits());
        let (a, b) = (recombined.quantile(0.95), full.quantile(0.95));
        prop_assert!((a - b).abs() <= 0.125 * b + 1e-12, "p95 {a} vs {b}");
    }

    /// Quantile sanity on arbitrary streams: monotone in q, inside
    /// [min, max], and the relative error at the median is bounded by
    /// the sub-bucket resolution (≤ 1/8 of a factor-two bucket).
    #[test]
    fn quantiles_are_monotone_and_bounded(
        values in proptest::collection::vec(1e-6f64..10.0, 1..300),
    ) {
        let s = whole(&values);
        let qs: Vec<f64> = [0.0, 0.25, 0.5, 0.9, 0.99, 1.0]
            .iter().map(|&q| s.quantile(q)).collect();
        for w in qs.windows(2) {
            prop_assert!(w[0] <= w[1], "quantiles not monotone: {:?}", qs);
        }
        prop_assert!(qs[0] >= s.min() && qs[5] <= s.max());

        let mut sorted = values.clone();
        sorted.sort_by(f64::total_cmp);
        let exact = sorted[(sorted.len() - 1) / 2];
        let est = s.quantile(0.5);
        // One sub-bucket is ≤ 12.5% wide; allow a whole bucket of slack
        // for interpolation at small counts.
        prop_assert!(
            (est - exact).abs() <= 0.25 * exact + 1e-9,
            "median {est} vs exact {exact}"
        );
    }
}
