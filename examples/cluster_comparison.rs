//! System-design evaluation (the paper's §7: "exploiting its potential as a
//! system design evaluation tool"): compare the same HPF programs on the
//! iPSC/860 hypercube vs a network-of-workstations HPDC target — purely
//! from the two machines' System Abstraction Graphs, no hardware required.
//!
//! ```sh
//! cargo run --release --example cluster_comparison
//! ```

use hpf90d::machine::{ipsc860, now_cluster};
use hpf90d::report::pipeline::{predict_source_on, PredictOptions};

fn main() {
    let nodes = 8;
    let cube = ipsc860(nodes);
    let now = now_cluster(nodes);

    println!("Same applications, two machines ({nodes} nodes each):\n");
    println!(
        "{:<22} {:>14} {:>14}   winner",
        "application", "iPSC/860 (s)", "NOW cluster (s)"
    );

    for (name, size) in [
        ("PI", 4096usize),
        ("PI", 1048576),
        ("LFK 1", 4096),
        ("N-Body", 512),
        ("Financial", 256),
        ("Laplace (Blk-X)", 256),
    ] {
        let kernel = hpf90d::kernels::kernel_by_name(name).expect("kernel");
        let src = kernel.source(size, nodes);
        let opts = PredictOptions::with_nodes(nodes);
        let t_cube = predict_source_on(&src, &cube, &opts)
            .expect("cube")
            .total_seconds();
        let t_now = predict_source_on(&src, &now, &opts)
            .expect("now")
            .total_seconds();
        println!(
            "{:<22} {:>14.5} {:>14.5}   {}",
            format!("{name} (n={size})"),
            t_cube,
            t_now,
            if t_cube < t_now { "iPSC/860" } else { "NOW" }
        );
    }

    println!();
    println!("The NOW's millisecond LAN latency loses every latency-sensitive");
    println!("configuration; only at very large grain (PI at n=2^20) do its");
    println!("faster nodes pay off — a design trade-off the framework");
    println!("quantifies before anyone buys either machine.");
}
