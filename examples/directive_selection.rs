//! Directive selection (the paper's §5.2.1): use the interpretive framework
//! to choose the best `DISTRIBUTE` directive for the Laplace solver without
//! ever running the program — then verify the choice against the simulated
//! machine. Also demonstrates the "intelligent compiler" idea of §7 by
//! searching the directive space automatically.
//!
//! ```sh
//! cargo run --release --example directive_selection [size] [procs]
//! ```

use hpf90d::kernels::{Kernel, KernelKind, LaplaceDist};
use hpf90d::prelude::*;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let size: usize = args.get(1).and_then(|v| v.parse().ok()).unwrap_or(256);
    let procs: usize = args.get(2).and_then(|v| v.parse().ok()).unwrap_or(4);

    println!("Selecting DISTRIBUTE directives for the Laplace solver");
    println!("problem size {size}x{size}, {procs} processors\n");

    let variants = [
        LaplaceDist::BlockBlock,
        LaplaceDist::BlockStar,
        LaplaceDist::StarBlock,
    ];

    let mut rows = Vec::new();
    for dist in variants {
        let kernel = Kernel {
            kind: KernelKind::Laplace(dist),
            name: "Laplace",
            description: "",
            is_kernel: false,
            size_range: (size, size),
        };
        let src = kernel.source(size, procs);

        // Interpretive estimate: seconds of estimated execution time,
        // obtained in milliseconds of wall time.
        let t0 = std::time::Instant::now();
        let est = predict_source(&src, &PredictOptions::with_nodes(procs)).expect("predict");
        let est_wall = t0.elapsed();

        // "Measurement" on the simulated machine (100 runs).
        let mut sopts = SimulateOptions::with_nodes(procs);
        sopts.sim.runs = 100;
        let meas = simulate_source(&src, &sopts).expect("simulate");

        println!(
            "{:>10}:  estimated {:.4} s   measured {:.4} s   (err {:>5.1}%, predicted in {:?})",
            dist.label(),
            est.total_seconds(),
            meas.mean,
            100.0 * (est.total_seconds() - meas.mean).abs() / meas.mean,
            est_wall,
        );
        rows.push((dist, est.total_seconds(), meas.mean));
    }

    let best_est = rows
        .iter()
        .min_by(|a, b| a.1.total_cmp(&b.1))
        .expect("rows");
    let best_meas = rows
        .iter()
        .min_by(|a, b| a.2.total_cmp(&b.2))
        .expect("rows");
    println!();
    println!("framework selects : {}", best_est.0.label());
    println!("machine agrees    : {}", best_meas.0.label());
    assert_eq!(
        best_est.0.label(),
        best_meas.0.label(),
        "directive selection must agree with measurement"
    );
    println!("\n(the paper's conclusion: the (Block,*) distribution is the appropriate choice)");
}
