//! Application performance debugging (the paper's §5.2.2): use the output
//! module's per-phase and per-line metrics to find where the time goes in
//! the stock-option pricing model — *without a running application*.
//!
//! ```sh
//! cargo run --release --example performance_debugging
//! ```

use hpf90d::interp::{paragraph_trace, profile_report, query_line};
use hpf90d::prelude::*;
use hpf90d::report::pipeline::predict_source_full;

fn main() {
    let kernel = hpf90d::kernels::kernel_by_name("Financial").expect("financial model");
    let src = kernel.source(256, 4);
    println!("=== source ===\n{src}");

    let (pred, aag, _) =
        predict_source_full(&src, &PredictOptions::with_nodes(4)).expect("prediction");

    // Output form 1: the generic application profile.
    println!(
        "{}",
        profile_report(&pred, &aag, "stock option pricing, 4 procs, size 256")
    );

    // Output form 2: per-line queries — walk every source line and show
    // which ones carry the cost (the "identify bottlenecks" workflow).
    println!("== per-line cost attribution ==");
    for (i, line) in src.lines().enumerate() {
        let m = query_line(&pred, &aag, i as u32 + 1);
        if m.time() > 0.0 {
            println!(
                "{:>3}  {:>10.1} µs  ({:>4.1}% comm)  | {}",
                i + 1,
                m.time() * 1e6,
                100.0 * m.comm_fraction(),
                line
            );
        }
    }

    // The bottleneck: the line with the largest attributed time.
    let (line_no, cost) = (1..=src.lines().count() as u32)
        .map(|l| (l, query_line(&pred, &aag, l).time()))
        .max_by(|a, b| a.1.total_cmp(&b.1))
        .expect("lines");
    println!(
        "\nbottleneck: line {line_no} ({:.1}% of total) -> {}",
        100.0 * cost / pred.total_seconds(),
        src.lines().nth(line_no as usize - 1).unwrap_or("").trim()
    );

    // Output form 3: the ParaGraph-style interpretation trace.
    let trace = paragraph_trace(&pred, &aag);
    println!(
        "\n== ParaGraph trace (first 12 events of {}) ==",
        trace.lines().count()
    );
    for l in trace.lines().take(12) {
        println!("  {l}");
    }

    // Bonus: the machine-side per-node utilization view (what ParaGraph
    // would draw from the trace), from the simulated iPSC/860.
    let (analyzed, spmd) =
        hpf90d::report::pipeline::compile_source(&src, 4, &Default::default(), &Default::default())
            .expect("compile");
    let profile = hpf90d::eval::run(&analyzed).ok().map(|o| o.profile);
    let machine = hpf90d::machine::ipsc860(4);
    let sim_trace = hpf90d::sim::trace_program(&machine, &spmd, profile.as_ref());
    println!("\n== per-node Gantt (simulated machine) ==");
    print!("{}", sim_trace.gantt(64));
    println!("\nutilization (busy/comm/idle):");
    for (n, (b, c, i)) in sim_trace.utilization().iter().enumerate() {
        println!(
            "  node {n}: {:>5.1}% / {:>5.1}% / {:>5.1}%",
            b * 100.0,
            c * 100.0,
            i * 100.0
        );
    }
}
