//! Quickstart: predict the performance of a small HPF/Fortran 90D program
//! on the abstracted iPSC/860 without running it.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use hpf90d::prelude::*;
use hpf90d::report::pipeline::{calibrated_machine, predict_source_full};

const SRC: &str = r#"
PROGRAM SAXPY
  INTEGER, PARAMETER :: N = 4096
  REAL X(N), Y(N)
  REAL A
!HPF$ PROCESSORS P(8)
!HPF$ TEMPLATE T(N)
!HPF$ ALIGN X(I) WITH T(I)
!HPF$ ALIGN Y(I) WITH T(I)
!HPF$ DISTRIBUTE T(BLOCK) ONTO P
  A = 2.5
  X = 1.0
  Y = 2.0
  Y = Y + A * X
  PRINT *, SUM(Y)
END PROGRAM SAXPY
"#;

fn main() {
    // 1. The whole pipeline in one call: parse → analyze → compile (Phase 1)
    //    → abstract (AAG/SAAG) → interpret (Phase 2).
    let opts = PredictOptions::with_nodes(8);
    let (prediction, aag, spmd) = predict_source_full(SRC, &opts).expect("pipeline");

    println!("== SPMD program structure (Phase 1 output) ==");
    println!("{}", spmd.outline());

    println!("== Application abstraction (SAAG) ==");
    println!("{}", aag.outline());

    println!("== Interpreted performance ==");
    println!(
        "{}",
        hpf90d::interp::profile_report(&prediction, &aag, "SAXPY on 8 nodes")
    );

    // 2. The same program "run on the machine" (discrete-event simulation),
    //    averaged over 1000 runs like the paper's measurements.
    let mut sopts = SimulateOptions::with_nodes(8);
    sopts.sim.runs = 1000;
    let measured = simulate_source(SRC, &sopts).expect("simulation");
    println!("== Simulated measurement (1000 runs) ==");
    println!("  mean {:.6} s   std {:.6} s", measured.mean, measured.std);
    println!(
        "  prediction error: {:.2}%",
        100.0 * (prediction.total_seconds() - measured.mean).abs() / measured.mean
    );

    // 3. The machine abstraction itself (System Abstraction Graph).
    let machine = calibrated_machine(8);
    println!("\n== System Abstraction Graph ==");
    println!("{}", machine.sag.outline());
}
