//! What-if experimentation (the paper's §3.3 "user experimentation with
//! system and run-time parameters"): vary problem size, machine size, and
//! engine models from within the API — no editing, no compiling, no queueing
//! on a shared machine.
//!
//! ```sh
//! cargo run --release --example whatif_experimentation
//! ```

use hpf90d::interp::InterpOptions;
use hpf90d::prelude::*;

fn main() {
    let kernel = hpf90d::kernels::kernel_by_name("N-Body").expect("kernel");

    // 1. Problem-size scaling at fixed machine size.
    println!("== N-Body: problem-size sweep on 8 nodes ==");
    for n in [64usize, 128, 256, 512, 1024] {
        let src = kernel.source(n, 8);
        let t = predict_source(&src, &PredictOptions::with_nodes(8))
            .expect("predict")
            .total_seconds();
        println!("  n = {n:>5}: {t:.4} s");
    }

    // 2. Machine-size scaling at fixed problem size (speedup curve).
    println!("\n== N-Body (n=1024): machine-size sweep ==");
    let mut t1 = None;
    for p in [1usize, 2, 4, 8] {
        let src = kernel.source(1024, p);
        let t = predict_source(&src, &PredictOptions::with_nodes(p))
            .expect("predict")
            .total_seconds();
        let t1v = *t1.get_or_insert(t);
        println!("  p = {p}: {t:.4} s   speedup {:.2}x", t1v / t);
    }

    // 3. Engine-model ablations: what does the memory-hierarchy model
    //    contribute? How much could comp/comm overlap buy?
    println!("\n== Laplace 256 on 4 nodes: model ablations ==");
    let lap = hpf90d::kernels::kernel_by_name("Laplace (Blk-X)").expect("kernel");
    let src = lap.source(256, 4);
    let mut base_opts = PredictOptions::with_nodes(4);
    let base = predict_source(&src, &base_opts)
        .expect("predict")
        .total_seconds();
    println!("  full model                : {base:.4} s");

    base_opts.interp = InterpOptions {
        memory_hierarchy: false,
        ..Default::default()
    };
    let flat = predict_source(&src, &base_opts)
        .expect("predict")
        .total_seconds();
    println!(
        "  flat memory (no caches)   : {flat:.4} s   ({:+.1}%)",
        100.0 * (flat - base) / base
    );

    base_opts.interp = InterpOptions {
        overlap_comp_comm: true,
        ..Default::default()
    };
    let ovl = predict_source(&src, &base_opts)
        .expect("predict")
        .total_seconds();
    println!(
        "  with comp/comm overlap    : {ovl:.4} s   ({:+.1}%)",
        100.0 * (ovl - base) / base
    );

    // 4. Critical-variable what-if: pretend the Jacobi solver needed 4x the
    //    iterations (user-supplied run-time parameter).
    println!("\n== what-if: critical variables from the interface ==");
    let mut opts = PredictOptions::with_nodes(4);
    opts.param_overrides.insert("N".into(), 128);
    let t128 = predict_source(&src, &opts)
        .expect("predict")
        .total_seconds();
    println!("  N overridden to 128       : {t128:.4} s (no source edit needed)");
}
