//! # hpf90d — Interpretive performance prediction for HPF/Fortran 90D
//!
//! A reproduction of Parashar, Hariri, Haupt & Fox, *Interpreting the
//! Performance of HPF/Fortran 90D* (Supercomputing '94).
//!
//! This facade crate re-exports the public API of the workspace:
//!
//! - [`lang`] — the HPF/Fortran 90D subset front end (lexer, parser, AST,
//!   semantic analysis).
//! - [`eval`] — the functional (value-level) interpreter used for semantics
//!   validation and critical-variable resolution.
//! - [`machine`] — system characterization (SAG/SAU) and the iPSC/860 model.
//! - [`compiler`] — the Phase-1 compiler producing the loosely synchronous
//!   SPMD intermediate representation.
//! - [`appgraph`] — application characterization (AAU/AAG/SAAG).
//! - [`interp`] — the interpretation engine and output module (the paper's
//!   core contribution).
//! - [`sim`] — the discrete-event iPSC/860 simulator standing in for the
//!   real machine ("measured" times).
//! - [`kernels`] — the NPAC benchmark-suite reproduction.
//! - [`report`] — harness that regenerates every table and figure.
//!
//! ## Quickstart
//!
//! ```
//! use hpf90d::prelude::*;
//!
//! let src = r#"
//! PROGRAM AXPY
//!   INTEGER, PARAMETER :: N = 64
//!   REAL X(N), Y(N)
//! !HPF$ PROCESSORS P(4)
//! !HPF$ TEMPLATE T(N)
//! !HPF$ ALIGN X(I) WITH T(I)
//! !HPF$ ALIGN Y(I) WITH T(I)
//! !HPF$ DISTRIBUTE T(BLOCK) ONTO P
//!   X = 1.0
//!   Y = 2.0
//!   Y = Y + 3.0 * X
//! END PROGRAM AXPY
//! "#;
//!
//! let prediction = predict_source(src, &PredictOptions::default()).unwrap();
//! assert!(prediction.total().as_secs_f64() > 0.0);
//! ```

pub use appgraph;
pub use hpf_compiler as compiler;
pub use hpf_eval as eval;
pub use hpf_io as io;
pub use hpf_lang as lang;
pub use interp;
pub use ipsc_sim as sim;
pub use kernels;
pub use machine;
pub use report;

pub use report::pipeline::{predict_source, simulate_source, PredictOptions, SimulateOptions};

/// Commonly used items for working with the framework.
pub mod prelude {
    pub use crate::compiler::{compile, CompileOptions, SpmdProgram};
    pub use crate::interp::{InterpretationEngine, Prediction};
    pub use crate::lang::{parse_program, Program};
    pub use crate::machine::{ipsc860, MachineModel};
    pub use crate::report::pipeline::{
        predict_source, simulate_source, PredictOptions, SimulateOptions,
    };
    pub use crate::sim::{SimConfig, Simulator};
}
