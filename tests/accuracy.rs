//! Integration: the headline claims of the paper's evaluation hold for the
//! reproduction — prediction accuracy bands (Table 2 shape), directive
//! selection (Figures 4/5), performance debugging (Figure 7), and
//! experimentation cost (Figure 8).

use hpf90d::report::experiments::{accuracy_sample, figure7, SweepConfig};
use hpf90d::report::workflow::WorkflowModel;
use hpf90d::{predict_source, simulate_source, PredictOptions, SimulateOptions};

fn cfg() -> SweepConfig {
    SweepConfig {
        runs: 30,
        ..SweepConfig::quick()
    }
}

/// Every application predicted within the paper's stated worst case
/// (≈20%, with margin for our coarser calibration) at a representative
/// configuration.
#[test]
fn predictions_inside_accuracy_band() {
    for name in [
        "PI",
        "LFK 1",
        "LFK 3",
        "LFK 22",
        "Financial",
        "Laplace (Blk-X)",
    ] {
        let k = hpf90d::kernels::kernel_by_name(name).unwrap();
        let n = k.size_range.0.max(128).min(k.size_range.1);
        for procs in [1usize, 4] {
            let s = accuracy_sample(&k, n, procs, &cfg()).unwrap();
            assert!(
                s.abs_error_pct < 25.0,
                "{name} n={n} p={procs}: err {:.1}% (pred {:.6}, meas {:.6})",
                s.abs_error_pct,
                s.predicted_s,
                s.measured_s
            );
        }
    }
}

/// The interpreted time is usable as a *relative* measure: ranking of the
/// three Laplace distributions agrees between prediction and measurement.
#[test]
fn directive_selection_agrees_with_measurement() {
    let mut est = Vec::new();
    let mut meas = Vec::new();
    for name in ["Laplace (Blk-Blk)", "Laplace (Blk-X)", "Laplace (X-Blk)"] {
        let k = hpf90d::kernels::kernel_by_name(name).unwrap();
        let src = k.source(256, 4);
        let e = predict_source(&src, &PredictOptions::with_nodes(4))
            .unwrap()
            .total_seconds();
        let mut so = SimulateOptions::with_nodes(4);
        so.sim.runs = 30;
        let m = simulate_source(&src, &so).unwrap().mean;
        est.push((name, e));
        meas.push((name, m));
    }
    let best_est = est.iter().min_by(|a, b| a.1.total_cmp(&b.1)).unwrap().0;
    let best_meas = meas.iter().min_by(|a, b| a.1.total_cmp(&b.1)).unwrap().0;
    assert_eq!(best_est, best_meas, "est {est:?} meas {meas:?}");
    assert_eq!(best_est, "Laplace (Blk-X)", "the paper's (Block,*) choice");
}

/// Figure 7 shape: phase 1 communicates, phase 2 does not, and phase 1
/// dominates.
#[test]
fn financial_phase_profile_shape() {
    let phases = figure7(256, 4);
    assert_eq!(phases.len(), 2);
    let p1 = &phases[0];
    let p2 = &phases[1];
    assert!(p1.comm_us > 0.0);
    assert_eq!(p2.comm_us, 0.0);
    let t1 = p1.comp_us + p1.comm_us + p1.overhead_us;
    let t2 = p2.comp_us + p2.comm_us + p2.overhead_us;
    assert!(t1 > 10.0 * t2, "phase 1 dominates: {t1} vs {t2}");
}

/// Figure 8 shape: the interpretive path is several times cheaper than the
/// measurement path for the Laplace experiment.
#[test]
fn experimentation_cost_shape() {
    let m = machine::ipsc860(8);
    let w = WorkflowModel::default();
    for mean_run in [0.05, 0.1, 0.15] {
        let t = w.variant_times(&m, "x", 16, 1000, mean_run);
        assert!(t.measured_min > 2.5 * t.interpreter_min);
    }
}

/// Predictions track problem-size growth (needed for "first-cut estimate"
/// use): doubling N must grow predicted time for a compute-bound kernel.
#[test]
fn prediction_monotone_in_problem_size() {
    let k = hpf90d::kernels::kernel_by_name("PI").unwrap();
    let mut last = 0.0;
    for n in [256usize, 512, 1024, 2048] {
        let t = predict_source(&k.source(n, 4), &PredictOptions::with_nodes(4))
            .unwrap()
            .total_seconds();
        assert!(t > last, "n={n}: {t} vs {last}");
        last = t;
    }
}

/// Interpreted times sit within the simulated run-to-run variance envelope
/// for at least the well-behaved applications (the paper: "interpreted
/// performance typically lies within the variance of the measured times").
#[test]
fn prediction_near_measured_variance_for_laplace() {
    let k = hpf90d::kernels::kernel_by_name("Laplace (Blk-X)").unwrap();
    let s = accuracy_sample(&k, 128, 4, &cfg()).unwrap();
    // Allow a handful of standard deviations — the DES variance is tight.
    assert!(
        (s.predicted_s - s.measured_s).abs() < s.measured_s * 0.25,
        "pred {} meas {} (std {})",
        s.predicted_s,
        s.measured_s,
        s.measured_std_s
    );
}

/// The predicted communication *fraction* tracks the simulated one — the
/// breakdown, not just the total, is trustworthy (the basis of Figure 7's
/// debugging story).
#[test]
fn comm_fraction_tracks_simulation() {
    let k = hpf90d::kernels::kernel_by_name("Laplace (Blk-X)").unwrap();
    let src = k.source(128, 4);
    let pred = predict_source(&src, &PredictOptions::with_nodes(4)).unwrap();
    let mut so = SimulateOptions::with_nodes(4);
    so.sim.runs = 30;
    let meas = simulate_source(&src, &so).unwrap();
    let pred_frac = pred.total.comm / pred.total_seconds();
    let meas_total = meas.comp + meas.comm + meas.overhead;
    let meas_frac = meas.comm / meas_total;
    assert!(
        (pred_frac - meas_frac).abs() < 0.15,
        "comm fraction: predicted {pred_frac:.3} vs simulated {meas_frac:.3}"
    );
}

/// Machine-size what-ifs preserve ordering: for a fixed problem, predicted
/// and simulated node-count rankings agree (speedup-curve shape).
#[test]
fn node_scaling_ranking_agrees() {
    let k = hpf90d::kernels::kernel_by_name("PI").unwrap();
    let src_for = |p: usize| k.source(2048, p);
    let mut pred = Vec::new();
    let mut meas = Vec::new();
    for p in [1usize, 2, 4, 8] {
        let src = src_for(p);
        pred.push(
            predict_source(&src, &PredictOptions::with_nodes(p))
                .unwrap()
                .total_seconds(),
        );
        let mut so = SimulateOptions::with_nodes(p);
        so.sim.runs = 20;
        meas.push(simulate_source(&src, &so).unwrap().mean);
    }
    for w in pred.windows(2).zip(meas.windows(2)) {
        let (pw, mw) = w;
        assert_eq!(
            pw[0] > pw[1],
            mw[0] > mw[1],
            "ranking flip: pred {pred:?} meas {meas:?}"
        );
    }
}
