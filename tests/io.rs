//! Parallel-I/O subsystem invariants at the facade level.
//!
//! The load-bearing contract: programs without I/O statements are priced
//! *bit-identically* to the pre-I/O engine. `Metrics.io` stays exactly
//! `0.0`, the overlap pools stay empty, and the I/O compile configuration
//! is inert — so every existing golden (table2_quick, figure2,
//! advisor_laplace, serve_predict, the loadgen checksum) is reproduced
//! byte for byte, which the CI golden jobs then enforce end-to-end.

use hpf90d::compiler::CompileOptions;
use hpf90d::io::IoConfig;
use hpf90d::report::pipeline::{predict_source, simulate_source, PredictOptions, SimulateOptions};
use proptest::prelude::*;

/// A small I/O-free program family: 1-D BLOCK stencil + reduction, the
/// shapes the paper's kernels are made of.
fn io_free_source(n: i64, p: i64, stencil: bool) -> String {
    let body = if stencil {
        "FORALL (I = 2:N-1) B(I) = 0.5 * (A(I-1) + A(I+1))\nS = SUM(B)"
    } else {
        "B = A + 1.0\nS = SUM(B)"
    };
    format!(
        "PROGRAM T\nINTEGER, PARAMETER :: N = {n}\nREAL A(N), B(N), S\n\
         !HPF$ PROCESSORS P({p})\n!HPF$ TEMPLATE TPL(N)\n\
         !HPF$ ALIGN A(I) WITH TPL(I)\n!HPF$ ALIGN B(I) WITH TPL(I)\n\
         !HPF$ DISTRIBUTE TPL(BLOCK) ONTO P\nA = 1.0\n{body}\nEND\n"
    )
}

proptest! {
    /// Zero-I/O programs charge exactly zero I/O time, in both the
    /// analytic prediction and the DES, and the total decomposes without
    /// an I/O term bit-for-bit.
    #[test]
    fn io_free_programs_price_zero_io(
        n in 16i64..256,
        p_log2 in 0i64..4,
        stencil in 0i64..2,
    ) {
        let p = 1i64 << p_log2;
        let stencil = stencil == 1;
        let src = io_free_source(n, p, stencil);
        let popts = PredictOptions::with_nodes(p as usize);
        let pred = predict_source(&src, &popts).unwrap();
        prop_assert_eq!(pred.total.io.to_bits(), 0.0f64.to_bits());
        let sum = pred.total.comp + pred.total.comm + pred.total.overhead;
        prop_assert_eq!(pred.total.time().to_bits(), sum.to_bits());

        let mut sopts = SimulateOptions::with_nodes(p as usize);
        sopts.sim.runs = 5;
        let meas = simulate_source(&src, &sopts).unwrap();
        prop_assert_eq!(meas.io.to_bits(), 0.0f64.to_bits());
    }

    /// The compile-time I/O configuration is inert on I/O-free programs:
    /// any valid (servers, stripe) choice yields the bit-identical
    /// prediction, so pre-I/O callers see the pre-I/O numbers.
    #[test]
    fn io_config_is_inert_without_io_statements(
        n in 16i64..128,
        servers in 0usize..4,
        stripe in 0usize..8,
    ) {
        let src = io_free_source(n, 4, true);
        let base = predict_source(&src, &PredictOptions::with_nodes(4)).unwrap();
        let mut popts = PredictOptions::with_nodes(4);
        popts.compile = CompileOptions {
            nodes: 4,
            io: IoConfig {
                io_servers: servers,
                stripe_factor: stripe,
            },
            ..Default::default()
        };
        let tuned = predict_source(&src, &popts).unwrap();
        prop_assert_eq!(
            base.total_seconds().to_bits(),
            tuned.total_seconds().to_bits()
        );
    }
}

/// An out-of-core program prices a strictly positive I/O share in both
/// frames, and the shares agree within the paper's ±20% band on the
/// default machine (full per-backend table: `artifacts_io_accuracy.txt`).
#[test]
fn ooc_program_prices_positive_io_in_both_frames() {
    let kernel = hpf90d::kernels::kernel_by_name("Laplace OOC").unwrap();
    let src = kernel.source(32, 4);
    let pred = predict_source(&src, &PredictOptions::with_nodes(4)).unwrap();
    assert!(pred.total.io > 0.0, "predicted io share missing");

    let mut sopts = SimulateOptions::with_nodes(4);
    sopts.sim.runs = 10;
    let meas = simulate_source(&src, &sopts).unwrap();
    assert!(meas.io > 0.0, "simulated io share missing");

    let err = (pred.total_seconds() - meas.mean).abs() / meas.mean;
    assert!(
        err < 0.20,
        "ooc predicted {} vs simulated {} ({}% off)",
        pred.total_seconds(),
        meas.mean,
        err * 100.0
    );
}
