//! Normalization preserves semantics: running the functional interpreter on
//! the original program and on the normalized (array-assignment/where →
//! forall) program must produce identical scalar results.

use hpf90d::compiler::normalize;
use hpf90d::eval;
use hpf90d::lang::{analyze, parse_program, Program};
use std::collections::BTreeMap;

fn check(src: &str) {
    let parsed = parse_program(src).unwrap();
    let analyzed = analyze(&parsed, &BTreeMap::new()).unwrap();
    let original = eval::run(&analyzed).expect("original runs");

    let normalized_body = normalize(&analyzed).expect("normalizes");
    let norm_program = Program {
        name: analyzed.program.name.clone(),
        decls: analyzed.program.decls.clone(),
        directives: analyzed.program.directives.clone(),
        body: normalized_body,
        span: analyzed.program.span,
    };
    // Re-analyze so the synthesized forall dummies get implicit declarations.
    let norm_analyzed = analyze(&norm_program, &BTreeMap::new()).expect("re-analysis");
    let normalized = eval::run(&norm_analyzed).expect("normalized runs");

    for (name, v) in &original.scalars {
        let v2 = normalized
            .scalars
            .get(name)
            .unwrap_or_else(|| panic!("scalar {name} lost in normalization"));
        match (v.as_f64(), v2.as_f64()) {
            (Some(a), Some(b)) => assert!(
                (a - b).abs() <= 1e-9 * a.abs().max(1.0),
                "{name}: {a} vs {b}\nsource:\n{src}"
            ),
            _ => assert_eq!(v, v2, "{name}"),
        }
    }
}

#[test]
fn whole_array_ops_preserved() {
    check("PROGRAM T\nREAL A(10), B(10), S\nA = 2.0\nB = A * 3.0 + 1.0\nS = SUM(B)\nEND\n");
}

#[test]
fn sections_preserved() {
    check(
        "PROGRAM T
REAL A(12), B(12), S
FORALL (I = 1:12) B(I) = I * 1.0
A = 0.0
A(1:6) = B(7:12)
A(7:12:2) = B(1:6:2)
S = SUM(A)
END
",
    );
}

#[test]
fn where_preserved() {
    check(
        "PROGRAM T
REAL A(9), S
FORALL (I = 1:9) A(I) = I - 5.0
WHERE (A > 0.0)
A = A * 2.0
ELSEWHERE
A = -A
END WHERE
S = SUM(A)
END
",
    );
}

#[test]
fn cshift_rewrite_preserves_access_not_values() {
    // CSHIFT normalization deliberately models the *access pattern* (offset
    // reference) rather than circular value semantics; at the boundary the
    // normalized form reads out of range. Interior-only sums must agree.
    check(
        "PROGRAM T
REAL A(8), B(8), S
FORALL (I = 1:8) A(I) = I * 1.0
B = A + 1.0
S = SUM(B)
END
",
    );
}

#[test]
fn offset_sections_preserved() {
    check(
        "PROGRAM T
REAL U(16), V(16), S
FORALL (I = 1:16) U(I) = I * 0.5
V = 0.0
V(2:15) = U(1:14)
S = SUM(V)
END
",
    );
}

#[test]
fn two_dim_whole_assign_preserved() {
    check(
        "PROGRAM T
REAL A(4,6), B(4,6), S
FORALL (I = 1:4, J = 1:6) B(I,J) = I * 10.0 + J
A = B
S = SUM(A)
END
",
    );
}

#[test]
fn kernels_survive_normalization() {
    // The kernels that avoid CSHIFT boundary semantics must be semantics-
    // preserving end to end.
    for (name, n) in [
        ("PI", 64usize),
        ("PBS 1", 64),
        ("PBS 4", 64),
        ("LFK 1", 64),
        ("LFK 22", 64),
    ] {
        let k = hpf90d::kernels::kernel_by_name(name).unwrap();
        check(&k.source(n, 4));
    }
}
