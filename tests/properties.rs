//! Property-based tests over the core invariants (proptest).

use hpf90d::compiler::{partition, DimDist};
use hpf90d::lang::{analyze, parse_program, pretty_program};
use proptest::prelude::*;
use std::collections::BTreeMap;

proptest! {
    /// BLOCK ownership is a partition: every index owned by exactly one
    /// coordinate, and the per-coordinate counts sum to the extent.
    #[test]
    fn block_ownership_partitions(n in 1i64..2000, p in 1i64..17) {
        let src = format!(
            "PROGRAM T\nREAL A({n})\n!HPF$ PROCESSORS P({p})\n!HPF$ DISTRIBUTE A(BLOCK) ONTO P\nA = 0.0\nEND\n"
        );
        let prog = parse_program(&src).unwrap();
        let a = analyze(&prog, &BTreeMap::new()).unwrap();
        let table = partition(&a, None).unwrap();
        let ad = table.get("A").unwrap();
        let mut counts = vec![0i64; p as usize];
        for i in 1..=n {
            let c = ad.owner_coord(0, i);
            prop_assert!((0..p).contains(&c), "owner {c} out of range");
            counts[c as usize] += 1;
        }
        prop_assert_eq!(counts.iter().sum::<i64>(), n);
        for c in 0..p {
            prop_assert_eq!(ad.local_extent(0, c), counts[c as usize]);
        }
        // BLOCK is contiguous: owners are non-decreasing over the index range.
        let owners: Vec<i64> = (1..=n).map(|i| ad.owner_coord(0, i)).collect();
        prop_assert!(owners.windows(2).all(|w| w[0] <= w[1]));
    }

    /// CYCLIC ownership is a partition with near-equal counts (max-min ≤ 1).
    #[test]
    fn cyclic_ownership_balances(n in 1i64..2000, p in 1i64..17) {
        let src = format!(
            "PROGRAM T\nREAL A({n})\n!HPF$ PROCESSORS P({p})\n!HPF$ DISTRIBUTE A(CYCLIC) ONTO P\nA = 0.0\nEND\n"
        );
        let prog = parse_program(&src).unwrap();
        let a = analyze(&prog, &BTreeMap::new()).unwrap();
        let table = partition(&a, None).unwrap();
        let ad = table.get("A").unwrap();
        {
            let is_cyclic = matches!(ad.dims[0], DimDist::Cyclic { .. });
            prop_assert!(is_cyclic);
        }
        let mut counts = vec![0i64; p as usize];
        for i in 1..=n {
            counts[ad.owner_coord(0, i) as usize] += 1;
        }
        prop_assert_eq!(counts.iter().sum::<i64>(), n);
        let max = counts.iter().max().unwrap();
        let min = counts.iter().min().unwrap();
        prop_assert!(max - min <= 1, "cyclic imbalance: {counts:?}");
    }

    /// `owned_count_in_range` equals brute-force counting for arbitrary
    /// ranges and strides.
    #[test]
    fn owned_count_matches_bruteforce(
        n in 8i64..512,
        p in 1i64..9,
        lo in 1i64..64,
        len in 0i64..256,
        st in 1i64..5,
    ) {
        let hi = (lo + len).min(n);
        let src = format!(
            "PROGRAM T\nREAL A({n})\n!HPF$ PROCESSORS P({p})\n!HPF$ DISTRIBUTE A(BLOCK) ONTO P\nA = 0.0\nEND\n"
        );
        let prog = parse_program(&src).unwrap();
        let a = analyze(&prog, &BTreeMap::new()).unwrap();
        let table = partition(&a, None).unwrap();
        let ad = table.get("A").unwrap();
        for c in 0..p {
            let fast = ad.owned_count_in_range(0, c, lo, hi, st);
            let slow = (lo..=hi)
                .step_by(st as usize)
                .filter(|&i| ad.owner_coord(0, i) == c)
                .count() as u64;
            prop_assert_eq!(fast, slow, "c={}", c);
        }
    }

    /// Pretty-printing is a fixpoint: parse(pretty(parse(s))) == pretty(parse(s)).
    #[test]
    fn pretty_print_fixpoint(
        n in 1u32..100,
        coef in 1u32..50,
        lo in 1u32..10,
    ) {
        let src = format!(
            "PROGRAM T\nINTEGER, PARAMETER :: N = {n}\nREAL A(N+{lo}), B(N+{lo})\nFORALL (I = {lo}:N) A(I) = B(I) * {coef}.0 + 1.0\nEND\n"
        );
        let p1 = parse_program(&src).unwrap();
        let text1 = pretty_program(&p1);
        let p2 = parse_program(&text1).unwrap();
        prop_assert_eq!(text1, pretty_program(&p2));
    }

    /// Forall two-pass semantics: `X(K+1) = X(K) + X(K-1)` over any range
    /// equals the two-phase oracle (evaluate all RHS, then assign).
    #[test]
    fn forall_matches_two_pass_oracle(n in 6usize..80, lo in 2usize..4) {
        let hi = n - 1;
        let src = format!(
            "PROGRAM T\nINTEGER, PARAMETER :: N = {n}\nREAL X(N), S\nFORALL (I = 1:N) X(I) = I * 1.0\nFORALL (K = {lo}:{hi}) X(K+1) = X(K) + X(K-1)\nS = SUM(X)\nEND\n"
        );
        let p = parse_program(&src).unwrap();
        let a = analyze(&p, &BTreeMap::new()).unwrap();
        let out = hpf90d::eval::run(&a).unwrap();
        let got = out.scalars.get("S").and_then(|v| v.as_f64()).unwrap();

        // Oracle in plain Rust.
        let mut x: Vec<f64> = (0..=n).map(|i| i as f64).collect(); // 1-based
        let rhs: Vec<f64> = (lo..=hi).map(|k| x[k] + x[k - 1]).collect();
        for (j, k) in (lo..=hi).enumerate() {
            x[k + 1] = rhs[j];
        }
        let oracle: f64 = x[1..=n].iter().sum();
        prop_assert!((got - oracle).abs() < 1e-6, "{got} vs {oracle}");
    }

    /// Masked forall assigns exactly the masked subset.
    #[test]
    fn masked_forall_counts(n in 4usize..200, m in 2usize..7) {
        let src = format!(
            "PROGRAM T\nINTEGER, PARAMETER :: N = {n}\nREAL A(N), S\nFORALL (I = 1:N, MOD(I, {m}) == 0) A(I) = 1.0\nS = SUM(A)\nEND\n"
        );
        let p = parse_program(&src).unwrap();
        let a = analyze(&p, &BTreeMap::new()).unwrap();
        let out = hpf90d::eval::run(&a).unwrap();
        let got = out.scalars.get("S").and_then(|v| v.as_f64()).unwrap();
        prop_assert_eq!(got as usize, n / m);
    }

    /// Predicted time is non-negative, finite, and monotone in loop trips.
    #[test]
    fn prediction_monotone_in_trips(trips in 1u32..40) {
        let mk = |t: u32| {
            format!(
                "PROGRAM T\nINTEGER, PARAMETER :: N = 64\nREAL A(N)\nINTEGER K\n!HPF$ PROCESSORS P(4)\n!HPF$ DISTRIBUTE A(BLOCK) ONTO P\nDO K = 1, {t}\nA = A + 1.0\nEND DO\nEND\n"
            )
        };
        let t1 = hpf90d::predict_source(&mk(trips), &hpf90d::PredictOptions::with_nodes(4))
            .unwrap()
            .total_seconds();
        let t2 = hpf90d::predict_source(&mk(trips + 1), &hpf90d::PredictOptions::with_nodes(4))
            .unwrap()
            .total_seconds();
        prop_assert!(t1.is_finite() && t1 > 0.0);
        prop_assert!(t2 > t1);
    }

    /// The e-cube hypercube route is minimal for every pair (redundant with
    /// the machine crate's own tests but exercised here through the public
    /// facade for API stability).
    #[test]
    fn hypercube_routes_minimal(dim in 0u32..7, a in 0usize..128, b in 0usize..128) {
        let h = hpf90d::machine::Hypercube { dim };
        let a = a % h.nodes();
        let b = b % h.nodes();
        let route = h.route(a, b);
        prop_assert_eq!(route.len() as u32, h.hops(a, b));
    }

    /// Totality of the prediction pipeline on arbitrary text: whatever the
    /// input, parse → compile → interpret returns `Ok` or `Err` — it never
    /// panics. (The proptest harness turns a panic into a test failure.)
    #[test]
    fn pipeline_total_on_arbitrary_input(src in "\\PC{0,160}") {
        let _ = hpf90d::predict_source(&src, &hpf90d::PredictOptions::with_nodes(4));
    }

    /// Same, but with newlines injected so multi-line statements and
    /// directives are actually reached past the first lexer error.
    #[test]
    fn pipeline_total_on_arbitrary_lines(
        lines in proptest::collection::vec("[ A-Za-z0-9+\\-*/(),.:=!$<>']{0,24}", 0..12),
    ) {
        let src = lines.join("\n");
        let _ = hpf90d::predict_source(&src, &hpf90d::PredictOptions::with_nodes(4));
        // The functional interpreter must be total too (bounded steps).
        if let Ok(prog) = parse_program(&src) {
            if let Ok(a) = analyze(&prog, &BTreeMap::new()) {
                let _ = hpf90d::eval::run_with_limit(&a, 10_000);
            }
        }
    }

    /// Structured fuzz: programs assembled from a pool of statement
    /// fragments — valid, subtly invalid, and garbage — wrapped in a real
    /// header with HPF directives, so the deeper stages (normalization,
    /// partitioning, communication detection, interpretation) are exercised,
    /// not just the parser's error path.
    #[test]
    fn pipeline_total_on_structured_fuzz(
        picks in proptest::collection::vec(0usize..16, 0..8),
        n in 4u32..65,
        p in 1u32..9,
    ) {
        const FRAGMENTS: [&str; 16] = [
            "A = A + 1.0",
            "FORALL (I = 1:N) A(I) = B(I)",
            "FORALL (I = 2:N) A(I) = A(I-1) * 0.5",
            "DO K = 1, M\nA = A * 2.0\nEND DO",
            "A(0) = 3.0",
            "B = CSHIFT(A, 1)",
            "S = SUM(A)",
            "WHERE (A > 0.0)\nB = A\nEND WHERE",
            "A = B(",
            "X = UNDEFINEDVAR + 1",
            "!HPF$ DISTRIBUTE A(CYCLIC) ONTO P",
            "IF (A(1) > 0.5) THEN\nB = A\nEND IF",
            "@#$%^&",
            "A = TRANSPOSE(B)",
            "END",
            "S = A(K) + B(M)",
        ];
        let body: String = picks
            .iter()
            .map(|&i| FRAGMENTS[i])
            .collect::<Vec<_>>()
            .join("\n");
        let src = format!(
            "PROGRAM FUZZ\nINTEGER, PARAMETER :: N = {n}\nREAL A(N), B(N), S, X\nINTEGER K, M\n!HPF$ PROCESSORS P({p})\n!HPF$ DISTRIBUTE A(BLOCK) ONTO P\n!HPF$ DISTRIBUTE B(BLOCK) ONTO P\n{body}\nEND\n"
        );
        if let Ok(pred) = hpf90d::predict_source(&src, &hpf90d::PredictOptions::with_nodes(p as usize)) {
            let t = pred.total_seconds();
            prop_assert!(t.is_finite() && t >= 0.0, "non-finite prediction {t}");
        }
    }

    /// Resilience determinism: an identical `SimConfig` (seed + fault plan)
    /// yields a byte-identical simulation — every statistic bit-equal and
    /// the fault-event counts identical — across two independently
    /// constructed simulators.
    #[test]
    fn faulty_simulation_is_deterministic(
        seed in 0u64..1_000_000,
        plan_idx in 0usize..5,
        runs in 1usize..16,
    ) {
        use hpf90d::machine::FaultPlan;
        let plan = match plan_idx {
            0 => FaultPlan::none(),
            1 => FaultPlan::degraded_link(0, 1, 4.0),
            2 => FaultPlan::link_down(0, 2),
            3 => FaultPlan::slow_node(1, 2.0),
            _ => FaultPlan::lossy(0.05),
        };
        let src = "PROGRAM T\nINTEGER, PARAMETER :: N = 64\nREAL A(N), B(N)\n!HPF$ PROCESSORS P(8)\n!HPF$ DISTRIBUTE A(BLOCK) ONTO P\n!HPF$ DISTRIBUTE B(BLOCK) ONTO P\nFORALL (I = 2:63) B(I) = (A(I-1) + A(I+1)) * 0.5\nA = B\nEND\n";
        let prog = parse_program(src).unwrap();
        let analyzed = analyze(&prog, &BTreeMap::new()).unwrap();
        let opts = hpf90d::compiler::CompileOptions { nodes: 8, ..Default::default() };
        let spmd = hpf90d::compiler::compile(&analyzed, &opts).unwrap();
        let machine = hpf90d::machine::ipsc860(8);
        let run = || {
            let cfg = hpf90d::sim::SimConfig {
                runs,
                seed,
                faults: plan.clone(),
                ..Default::default()
            };
            hpf90d::sim::Simulator::with_config(&machine, cfg).simulate(&spmd, None)
        };
        let (r1, r2) = (run(), run());
        prop_assert_eq!(r1.mean.to_bits(), r2.mean.to_bits());
        prop_assert_eq!(r1.std.to_bits(), r2.std.to_bits());
        prop_assert_eq!(r1.min.to_bits(), r2.min.to_bits());
        prop_assert_eq!(r1.max.to_bits(), r2.max.to_bits());
        prop_assert_eq!(r1.comp.to_bits(), r2.comp.to_bits());
        prop_assert_eq!(r1.comm.to_bits(), r2.comm.to_bits());
        prop_assert_eq!(r1.overhead.to_bits(), r2.overhead.to_bits());
        prop_assert_eq!(r1.fault_stats, r2.fault_stats);
        // Byte-identical replay: the rendered record (floats print their
        // shortest round-trip form, so equal text ⇔ equal bits).
        prop_assert_eq!(format!("{r1:?}"), format!("{r2:?}"));
    }
}
