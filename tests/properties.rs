//! Property-based tests over the core invariants (proptest).

use hpf90d::compiler::{partition, DimDist};
use hpf90d::lang::{analyze, parse_program, pretty_program};
use proptest::prelude::*;
use std::collections::BTreeMap;

proptest! {
    /// BLOCK ownership is a partition: every index owned by exactly one
    /// coordinate, and the per-coordinate counts sum to the extent.
    #[test]
    fn block_ownership_partitions(n in 1i64..2000, p in 1i64..17) {
        let src = format!(
            "PROGRAM T\nREAL A({n})\n!HPF$ PROCESSORS P({p})\n!HPF$ DISTRIBUTE A(BLOCK) ONTO P\nA = 0.0\nEND\n"
        );
        let prog = parse_program(&src).unwrap();
        let a = analyze(&prog, &BTreeMap::new()).unwrap();
        let table = partition(&a, None).unwrap();
        let ad = table.get("A").unwrap();
        let mut counts = vec![0i64; p as usize];
        for i in 1..=n {
            let c = ad.owner_coord(0, i);
            prop_assert!((0..p).contains(&c), "owner {c} out of range");
            counts[c as usize] += 1;
        }
        prop_assert_eq!(counts.iter().sum::<i64>(), n);
        for c in 0..p {
            prop_assert_eq!(ad.local_extent(0, c), counts[c as usize]);
        }
        // BLOCK is contiguous: owners are non-decreasing over the index range.
        let owners: Vec<i64> = (1..=n).map(|i| ad.owner_coord(0, i)).collect();
        prop_assert!(owners.windows(2).all(|w| w[0] <= w[1]));
    }

    /// CYCLIC ownership is a partition with near-equal counts (max-min ≤ 1).
    #[test]
    fn cyclic_ownership_balances(n in 1i64..2000, p in 1i64..17) {
        let src = format!(
            "PROGRAM T\nREAL A({n})\n!HPF$ PROCESSORS P({p})\n!HPF$ DISTRIBUTE A(CYCLIC) ONTO P\nA = 0.0\nEND\n"
        );
        let prog = parse_program(&src).unwrap();
        let a = analyze(&prog, &BTreeMap::new()).unwrap();
        let table = partition(&a, None).unwrap();
        let ad = table.get("A").unwrap();
        {
            let is_cyclic = matches!(ad.dims[0], DimDist::Cyclic { .. });
            prop_assert!(is_cyclic);
        }
        let mut counts = vec![0i64; p as usize];
        for i in 1..=n {
            counts[ad.owner_coord(0, i) as usize] += 1;
        }
        prop_assert_eq!(counts.iter().sum::<i64>(), n);
        let max = counts.iter().max().unwrap();
        let min = counts.iter().min().unwrap();
        prop_assert!(max - min <= 1, "cyclic imbalance: {counts:?}");
    }

    /// `owned_count_in_range` equals brute-force counting for arbitrary
    /// ranges and strides.
    #[test]
    fn owned_count_matches_bruteforce(
        n in 8i64..512,
        p in 1i64..9,
        lo in 1i64..64,
        len in 0i64..256,
        st in 1i64..5,
    ) {
        let hi = (lo + len).min(n);
        let src = format!(
            "PROGRAM T\nREAL A({n})\n!HPF$ PROCESSORS P({p})\n!HPF$ DISTRIBUTE A(BLOCK) ONTO P\nA = 0.0\nEND\n"
        );
        let prog = parse_program(&src).unwrap();
        let a = analyze(&prog, &BTreeMap::new()).unwrap();
        let table = partition(&a, None).unwrap();
        let ad = table.get("A").unwrap();
        for c in 0..p {
            let fast = ad.owned_count_in_range(0, c, lo, hi, st);
            let slow = (lo..=hi)
                .step_by(st as usize)
                .filter(|&i| ad.owner_coord(0, i) == c)
                .count() as u64;
            prop_assert_eq!(fast, slow, "c={}", c);
        }
    }

    /// Pretty-printing is a fixpoint: parse(pretty(parse(s))) == pretty(parse(s)).
    #[test]
    fn pretty_print_fixpoint(
        n in 1u32..100,
        coef in 1u32..50,
        lo in 1u32..10,
    ) {
        let src = format!(
            "PROGRAM T\nINTEGER, PARAMETER :: N = {n}\nREAL A(N+{lo}), B(N+{lo})\nFORALL (I = {lo}:N) A(I) = B(I) * {coef}.0 + 1.0\nEND\n"
        );
        let p1 = parse_program(&src).unwrap();
        let text1 = pretty_program(&p1);
        let p2 = parse_program(&text1).unwrap();
        prop_assert_eq!(text1, pretty_program(&p2));
    }

    /// Forall two-pass semantics: `X(K+1) = X(K) + X(K-1)` over any range
    /// equals the two-phase oracle (evaluate all RHS, then assign).
    #[test]
    fn forall_matches_two_pass_oracle(n in 6usize..80, lo in 2usize..4) {
        let hi = n - 1;
        let src = format!(
            "PROGRAM T\nINTEGER, PARAMETER :: N = {n}\nREAL X(N), S\nFORALL (I = 1:N) X(I) = I * 1.0\nFORALL (K = {lo}:{hi}) X(K+1) = X(K) + X(K-1)\nS = SUM(X)\nEND\n"
        );
        let p = parse_program(&src).unwrap();
        let a = analyze(&p, &BTreeMap::new()).unwrap();
        let out = hpf90d::eval::run(&a).unwrap();
        let got = out.scalars.get("S").and_then(|v| v.as_f64()).unwrap();

        // Oracle in plain Rust.
        let mut x: Vec<f64> = (0..=n).map(|i| i as f64).collect(); // 1-based
        let rhs: Vec<f64> = (lo..=hi).map(|k| x[k] + x[k - 1]).collect();
        for (j, k) in (lo..=hi).enumerate() {
            x[k + 1] = rhs[j];
        }
        let oracle: f64 = x[1..=n].iter().sum();
        prop_assert!((got - oracle).abs() < 1e-6, "{got} vs {oracle}");
    }

    /// Masked forall assigns exactly the masked subset.
    #[test]
    fn masked_forall_counts(n in 4usize..200, m in 2usize..7) {
        let src = format!(
            "PROGRAM T\nINTEGER, PARAMETER :: N = {n}\nREAL A(N), S\nFORALL (I = 1:N, MOD(I, {m}) == 0) A(I) = 1.0\nS = SUM(A)\nEND\n"
        );
        let p = parse_program(&src).unwrap();
        let a = analyze(&p, &BTreeMap::new()).unwrap();
        let out = hpf90d::eval::run(&a).unwrap();
        let got = out.scalars.get("S").and_then(|v| v.as_f64()).unwrap();
        prop_assert_eq!(got as usize, n / m);
    }

    /// Predicted time is non-negative, finite, and monotone in loop trips.
    #[test]
    fn prediction_monotone_in_trips(trips in 1u32..40) {
        let mk = |t: u32| {
            format!(
                "PROGRAM T\nINTEGER, PARAMETER :: N = 64\nREAL A(N)\nINTEGER K\n!HPF$ PROCESSORS P(4)\n!HPF$ DISTRIBUTE A(BLOCK) ONTO P\nDO K = 1, {t}\nA = A + 1.0\nEND DO\nEND\n"
            )
        };
        let t1 = hpf90d::predict_source(&mk(trips), &hpf90d::PredictOptions::with_nodes(4))
            .unwrap()
            .total_seconds();
        let t2 = hpf90d::predict_source(&mk(trips + 1), &hpf90d::PredictOptions::with_nodes(4))
            .unwrap()
            .total_seconds();
        prop_assert!(t1.is_finite() && t1 > 0.0);
        prop_assert!(t2 > t1);
    }

    /// The e-cube hypercube route is minimal for every pair (redundant with
    /// the machine crate's own tests but exercised here through the public
    /// facade for API stability).
    #[test]
    fn hypercube_routes_minimal(dim in 0u32..7, a in 0usize..128, b in 0usize..128) {
        let h = hpf90d::machine::Hypercube { dim };
        let a = a % h.nodes();
        let b = b % h.nodes();
        let route = h.route(a, b);
        prop_assert_eq!(route.len() as u32, h.hops(a, b));
    }
}
