//! Integration: the functional interpreter agrees with hand-written Rust
//! oracles on every benchmark kernel, and the whole suite flows through the
//! complete pipeline at every machine size.

use hpf90d::eval;
use hpf90d::kernels::all_kernels;
use hpf90d::lang::{analyze, parse_program};
use std::collections::BTreeMap;

fn run_kernel(name: &str, n: usize) -> eval::RunOutcome {
    let k = hpf90d::kernels::kernel_by_name(name).expect("kernel");
    let src = k.source(n, 1);
    let p = parse_program(&src).expect("parse");
    let a = analyze(&p, &BTreeMap::new()).expect("analyze");
    eval::run(&a).expect("eval")
}

fn scalar(out: &eval::RunOutcome, name: &str) -> f64 {
    out.scalars
        .get(name)
        .and_then(|v| v.as_f64())
        .unwrap_or_else(|| panic!("scalar {name}"))
}

#[test]
fn pi_quadrature_matches_oracle() {
    let n = 1024;
    let out = run_kernel("PI", n);
    // Oracle: midpoint rule for 4/(1+x^2).
    let h = 1.0 / n as f64;
    let oracle: f64 = (1..=n)
        .map(|i| 4.0 / (1.0 + ((i as f64 - 0.5) * h).powi(2)))
        .sum::<f64>()
        * h;
    assert!((scalar(&out, "PIE") - oracle).abs() < 1e-9);
    assert!((oracle - std::f64::consts::PI).abs() < 1e-3);
}

#[test]
fn lfk1_hydro_matches_oracle() {
    let n = 256;
    let out = run_kernel("LFK 1", n);
    // X(K) = Q + Y(K)*(R*Z(K+10) + T*Z(K+11)) with Y=0.5, Z=1.5 constants:
    let expect = 0.05 + 0.5 * (0.02 * 1.5 + 0.01 * 1.5);
    // check via PRINTing nothing — instead verify through a derived sum by
    // re-running a tiny program is overkill; the evaluator exposes only
    // scalars, so check the derived quantity implicitly through LFK 3 below.
    // Here we simply assert the run completed with sensible profile counts.
    let stats: u64 = out.profile.iter().map(|(_, s)| s.iterations).sum();
    assert!(stats >= (n as u64 - 11), "iterations recorded: {stats}");
    let _ = expect;
}

#[test]
fn lfk2_iccg_total_work_matches_halving_sum() {
    let n = 128;
    let out = run_kernel("LFK 2", n);
    // Levels: II = 64, 32, …, 1 → forall iterations sum to N-1.
    let forall_iters: u64 = out
        .profile
        .iter()
        .map(|(_, s)| s.iterations)
        .max()
        .unwrap_or(0);
    // the forall statement accumulates exactly sum(levels) iterations
    let expected: u64 = {
        let mut ii = n as u64;
        let mut total = 0;
        while ii > 1 {
            ii /= 2;
            total += ii;
        }
        total
    };
    let total_iters: u64 = out
        .profile
        .iter()
        .filter(|(_, s)| s.iterations > 0 && s.executions > 1)
        .map(|(_, s)| s.iterations)
        .max()
        .unwrap_or(0);
    assert!(
        forall_iters == expected || total_iters == expected,
        "expected {expected} forall iterations, saw max {forall_iters}/{total_iters}"
    );
}

#[test]
fn lfk3_inner_product_matches_oracle() {
    let n = 512;
    let out = run_kernel("LFK 3", n);
    assert!((scalar(&out, "Q") - (n as f64 * 0.25 * 2.0)).abs() < 1e-6);
}

#[test]
fn pbs1_trapezoid_matches_oracle() {
    let n = 256;
    let out = run_kernel("PBS 1", n);
    let h = 1.0 / n as f64;
    let oracle: f64 = (1..=n)
        .map(|i| (-(((i as f64 - 0.5) * h).powi(2))).exp())
        .sum::<f64>()
        * h;
    assert!(
        (scalar(&out, "S") - oracle).abs() < 1e-9,
        "{} vs {oracle}",
        scalar(&out, "S")
    );
}

#[test]
fn pbs4_reciprocal_sum_matches_oracle() {
    let n = 256;
    let out = run_kernel("PBS 4", n);
    let oracle: f64 = (1..=n).map(|i| 1.0 / (1.0 + (i % 97) as f64 / 97.0)).sum();
    assert!(
        (scalar(&out, "R") - oracle).abs() < 1e-3,
        "{} vs {oracle}",
        scalar(&out, "R")
    );
}

#[test]
fn nbody_forces_positive_and_finite() {
    let out = run_kernel("N-Body", 64);
    // After the systolic sweep the travelling copies are back in place and
    // every body has accumulated N-1 positive pair contributions.
    let stats: Vec<u64> = out.profile.iter().map(|(_, s)| s.iterations).collect();
    assert!(stats.iter().any(|&s| s >= 63), "systolic loop ran");
}

#[test]
fn financial_call_prices_nonnegative() {
    let out = run_kernel("Financial", 64);
    // Phase-2 mask: call price max(V-K, 0) — nothing negative may appear.
    // The evaluator's scalars hold only scalars; re-check via a PRINT-free
    // invariant: the run completed without error and executed both phases.
    assert!(out.profile.len() > 3);
}

#[test]
fn every_kernel_compiles_on_every_machine_size() {
    for k in all_kernels() {
        for procs in [1usize, 2, 4, 8] {
            let n = k.size_range.0.max(32);
            let src = k.source(n, procs);
            let p = parse_program(&src).expect("parse");
            let a = analyze(&p, &BTreeMap::new()).expect("analyze");
            let spmd = hpf90d::compiler::compile(
                &a,
                &hpf90d::compiler::CompileOptions {
                    nodes: procs,
                    ..Default::default()
                },
            )
            .unwrap_or_else(|e| panic!("{} @p{procs}: {e}", k.name));
            assert_eq!(spmd.nodes, procs);
            if procs == 1 {
                assert_eq!(
                    spmd.comm_phase_count(),
                    0,
                    "{} must not communicate on 1 node",
                    k.name
                );
            }
        }
    }
}

#[test]
fn laplace_functional_solution_is_physical() {
    let out = run_kernel("Laplace (Blk-X)", 16);
    // Boundary column held at 100; after 10 sweeps interior cells near the
    // hot boundary exceed those far away. We can't read arrays directly,
    // but the profile must show 10 executed sweeps.
    let sweeps = out
        .profile
        .iter()
        .map(|(_, s)| s.iterations)
        .max()
        .unwrap_or(0);
    assert!(sweeps >= 10);
}
