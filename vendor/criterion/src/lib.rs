//! Offline stub of `criterion`: times each benchmark closure with
//! `std::time::Instant` over a small fixed sample and prints the median.
//! Good enough for coarse before/after comparisons with `cargo bench`; no
//! statistics, plots, or baselines.

use std::time::{Duration, Instant};

/// How a batched iteration's setup output is sized (accepted, ignored).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

/// Top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {
    sample_size: usize,
}

impl Criterion {
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            sample_size: self.effective_samples(),
            _c: self,
        }
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl AsRef<str>,
        mut f: F,
    ) -> &mut Self {
        run_bench(id.as_ref(), self.effective_samples(), &mut f);
        self
    }

    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    fn effective_samples(&self) -> usize {
        if self.sample_size == 0 {
            10
        } else {
            self.sample_size
        }
    }
}

/// A named group of benchmarks.
pub struct BenchmarkGroup<'c> {
    name: String,
    sample_size: usize,
    _c: &'c mut Criterion,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl AsRef<str>,
        mut f: F,
    ) -> &mut Self {
        run_bench(
            &format!("{}/{}", self.name, id.as_ref()),
            self.sample_size,
            &mut f,
        );
        self
    }

    pub fn finish(self) {}
}

/// Passed to each benchmark closure; `iter` does the timing.
pub struct Bencher {
    samples: Vec<Duration>,
    per_sample: usize,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        for _ in 0..self.per_sample {
            let t0 = Instant::now();
            let out = f();
            self.samples.push(t0.elapsed());
            drop(out);
        }
    }

    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        for _ in 0..self.per_sample {
            let input = setup();
            let t0 = Instant::now();
            let out = routine(input);
            self.samples.push(t0.elapsed());
            drop(out);
        }
    }
}

fn run_bench<F: FnMut(&mut Bencher)>(id: &str, samples: usize, f: &mut F) {
    let mut b = Bencher {
        samples: Vec::new(),
        per_sample: samples.max(1),
    };
    f(&mut b);
    if b.samples.is_empty() {
        println!("bench {id:<50} (no samples)");
        return;
    }
    b.samples.sort();
    let median = b.samples[b.samples.len() / 2];
    let total: Duration = b.samples.iter().sum();
    println!(
        "bench {id:<50} median {:>12.3?}  ({} samples, total {:.3?})",
        median,
        b.samples.len(),
        total
    );
}

/// Re-export point kept for compatibility (`criterion::black_box`).
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_closure() {
        let mut c = Criterion::default();
        let mut runs = 0;
        c.sample_size(3)
            .bench_function("t", |b| b.iter(|| runs += 1));
        assert_eq!(runs, 3);
    }

    #[test]
    fn group_runs_and_finishes() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("g");
        let mut runs = 0;
        g.sample_size(2).bench_function("x", |b| {
            b.iter_batched(|| 5u32, |v| runs += v, BatchSize::SmallInput)
        });
        g.finish();
        assert_eq!(runs, 10);
    }
}
