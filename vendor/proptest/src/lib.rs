//! Offline stub of `proptest`: a deterministic property-test runner
//! implementing exactly the API surface this workspace uses.
//!
//! - [`proptest!`] wrapping `#[test] fn name(arg in strategy, ...) { body }`
//! - `prop_assert!`, `prop_assert_eq!`, `prop_assert_ne!`
//! - strategies: integer/float ranges, regex-subset string literals,
//!   tuples of strategies, and [`collection::vec`]
//!
//! Differences from upstream: a fixed number of cases per property
//! (`PROPTEST_CASES` env var, default 64), seeds derived from the test name
//! (reproducible across runs), and no shrinking — the failing case's inputs
//! are printed instead.

pub mod strategy;

pub use strategy::{Strategy, TestRng};

/// Number of cases each property runs (override with `PROPTEST_CASES`).
pub fn cases() -> u32 {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(64)
}

/// Everything the `proptest!` expansion and test bodies reference.
pub mod prelude {
    pub use crate::strategy::{Strategy, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

pub mod collection {
    //! Collection strategies (only `vec` is provided).

    use crate::strategy::{Strategy, TestRng};
    use std::ops::Range;

    /// Strategy producing `Vec`s with lengths drawn from `len` and elements
    /// from `element`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            let span = (self.len.end - self.len.start).max(1) as u64;
            let n = self.len.start + (rng.next_u64() % span) as usize;
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Run one property over `cases()` deterministic cases.
///
/// Called by the [`proptest!`] expansion; not public API upstream, but kept
/// as a plain function here so the macro body stays small.
pub fn run_property<F: FnMut(u32, &mut TestRng) -> Result<(), String>>(name: &str, mut f: F) {
    let n = cases();
    for case in 0..n {
        // One independent deterministic stream per (test, case).
        let mut rng = TestRng::for_case(name, case);
        if let Err(msg) = f(case, &mut rng) {
            panic!("property `{name}` failed at case {case}/{n}: {msg}");
        }
    }
}

/// `proptest! { #[test] fn prop(x in strat, ...) { body } ... }`
#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)+) => {
        $(
            $(#[$meta])*
            fn $name() {
                $crate::run_property(stringify!($name), |__case, __rng| {
                    $(let $arg = $crate::Strategy::sample(&$strat, __rng);)+
                    let __inputs = format!(
                        concat!($(stringify!($arg), " = {:?}; ",)+),
                        $(&$arg),+
                    );
                    let __run = || -> ::std::result::Result<(), ::std::string::String> {
                        $body
                        #[allow(unreachable_code)]
                        Ok(())
                    };
                    __run().map_err(|e| format!("{e}\n  inputs: {}", __inputs))
                });
            }
        )+
    };
}

/// Fallible assertion: fails the current case (with context) without
/// panicking inside the property body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return Err(format!("assertion failed: {}", stringify!($cond)));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return Err(format!(
                "assertion failed: {} ({})",
                stringify!($cond),
                format!($($fmt)+)
            ));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (ra, rb) = (&$a, &$b);
        if !(ra == rb) {
            return Err(format!("assertion failed: {:?} == {:?}", ra, rb));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (ra, rb) = (&$a, &$b);
        if !(ra == rb) {
            return Err(format!(
                "assertion failed: {:?} == {:?} ({})",
                ra, rb, format!($($fmt)+)
            ));
        }
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let (ra, rb) = (&$a, &$b);
        if ra == rb {
            return Err(format!("assertion failed: {:?} != {:?}", ra, rb));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (ra, rb) = (&$a, &$b);
        if ra == rb {
            return Err(format!(
                "assertion failed: {:?} != {:?} ({})",
                ra, rb, format!($($fmt)+)
            ));
        }
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_in_bounds(x in 5i64..100, y in 0usize..7) {
            prop_assert!((5..100).contains(&x));
            prop_assert!(y < 7);
        }

        #[test]
        fn tuples_and_vecs(v in crate::collection::vec((0u64..10, 1i32..4), 1..9)) {
            prop_assert!(!v.is_empty() && v.len() < 9);
            for (a, b) in &v {
                prop_assert!(*a < 10);
                prop_assert!((1..4).contains(b));
            }
        }

        #[test]
        fn regex_char_classes(s in "[a-cX]{2,5}") {
            prop_assert!(s.len() >= 2 && s.len() <= 5, "len {}", s.len());
            prop_assert!(s.chars().all(|c| matches!(c, 'a'..='c' | 'X')), "{s:?}");
        }

        #[test]
        fn regex_leading_atom(s in "[a-z][0-9_]{0,3}") {
            let mut cs = s.chars();
            let first = cs.next().unwrap();
            prop_assert!(first.is_ascii_lowercase());
            prop_assert!(cs.all(|c| c.is_ascii_digit() || c == '_'));
        }

        #[test]
        fn printable_class_with_newline(s in "[ -~\n]{0,20}") {
            prop_assert!(s.chars().all(|c| (' '..='~').contains(&c) || c == '\n'));
        }

        #[test]
        fn unicode_printables(s in "\\PC{0,30}") {
            prop_assert!(s.chars().count() <= 30);
            prop_assert!(s.chars().all(|c| !c.is_control()), "{s:?}");
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let mut a = TestRng::for_case("t", 3);
        let mut b = TestRng::for_case("t", 3);
        assert_eq!((0u64..10).sample(&mut a), (0u64..10).sample(&mut b));
    }

    #[test]
    #[should_panic(expected = "property `boom`")]
    fn failing_property_panics_with_context() {
        crate::run_property("boom", |_, _| Err("nope".into()));
    }
}
