//! Strategies: deterministic value generators driven by [`TestRng`].

use std::ops::Range;

/// Deterministic SplitMix64 stream for property cases.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Stream for one (test, case) pair: FNV-1a over the name, mixed with
    /// the case index.
    pub fn for_case(name: &str, case: u32) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        TestRng {
            state: h ^ ((case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)),
        }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u64) -> u64 {
        if n == 0 {
            0
        } else {
            self.next_u64() % n
        }
    }
}

/// A generator of values for one property argument.
pub trait Strategy {
    type Value;

    fn sample(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! impl_strategy_int_range {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                self.start.wrapping_add(rng.below(span) as $t)
            }
        }
    )*};
}

impl_strategy_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;

    fn sample(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        self.start + (self.end - self.start) * unit
    }
}

macro_rules! impl_strategy_tuple {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    };
}

impl_strategy_tuple!(A);
impl_strategy_tuple!(A, B);
impl_strategy_tuple!(A, B, C);
impl_strategy_tuple!(A, B, C, D);
impl_strategy_tuple!(A, B, C, D, E);
impl_strategy_tuple!(A, B, C, D, E, F);

/// String literals are regex-subset strategies, as in upstream proptest.
///
/// Supported syntax (everything this workspace's properties use):
/// atoms `[class]` (with ranges, escapes, and literal members), `\PC`
/// (printable: any non-control char), `\n`/`\t`/escaped literals, and plain
/// characters; each atom may carry a `{m,n}` or `{n}` repetition.
impl Strategy for &str {
    type Value = String;

    fn sample(&self, rng: &mut TestRng) -> String {
        let atoms = parse_pattern(self);
        let mut out = String::new();
        for atom in &atoms {
            let n = atom.min + rng.below((atom.max - atom.min + 1) as u64) as usize;
            for _ in 0..n {
                out.push(atom.pool.sample_char(rng));
            }
        }
        out
    }
}

/// One pattern atom: a character pool plus a repetition range.
struct Atom {
    pool: Pool,
    min: usize,
    max: usize,
}

enum Pool {
    /// Explicit candidate characters (char classes, literals).
    Chars(Vec<char>),
    /// `\PC`: printable (non-control) characters, mostly ASCII with a few
    /// multibyte representatives.
    Printable,
}

impl Pool {
    fn sample_char(&self, rng: &mut TestRng) -> char {
        match self {
            Pool::Chars(cs) => cs[rng.below(cs.len() as u64) as usize],
            Pool::Printable => {
                // Bias towards ASCII (realistic program text) but include
                // multibyte printables to exercise UTF-8 handling.
                const EXTRA: &[char] = &['é', 'λ', 'Ω', '中', '€', '∀', 'ß', '→'];
                if rng.below(8) == 0 {
                    EXTRA[rng.below(EXTRA.len() as u64) as usize]
                } else {
                    (0x20 + rng.below(0x5F) as u8) as char
                }
            }
        }
    }
}

fn parse_pattern(pat: &str) -> Vec<Atom> {
    let chars: Vec<char> = pat.chars().collect();
    let mut atoms = Vec::new();
    let mut i = 0;
    while i < chars.len() {
        let pool = match chars[i] {
            '[' => {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == ']')
                    .map(|p| i + p)
                    .unwrap_or_else(|| panic!("unclosed [ in pattern {pat:?}"));
                let pool = parse_class(&chars[i + 1..close], pat);
                i = close + 1;
                pool
            }
            '\\' => {
                i += 1;
                let c = *chars
                    .get(i)
                    .unwrap_or_else(|| panic!("dangling \\ in {pat:?}"));
                i += 1;
                match c {
                    'P' => {
                        // Unicode-category complement; this workspace only
                        // uses \PC (= not in category "Other": printable).
                        let cat = *chars.get(i).unwrap_or(&'C');
                        i += 1;
                        assert!(cat == 'C', "unsupported category \\P{cat} in {pat:?}");
                        Pool::Printable
                    }
                    'n' => Pool::Chars(vec!['\n']),
                    't' => Pool::Chars(vec!['\t']),
                    other => Pool::Chars(vec![other]),
                }
            }
            '.' => {
                i += 1;
                Pool::Printable
            }
            lit => {
                i += 1;
                Pool::Chars(vec![lit])
            }
        };
        // Optional {n} / {m,n} repetition.
        let (min, max) = if chars.get(i) == Some(&'{') {
            let close = chars[i..]
                .iter()
                .position(|&c| c == '}')
                .map(|p| i + p)
                .unwrap_or_else(|| panic!("unclosed {{ in pattern {pat:?}"));
            let body: String = chars[i + 1..close].iter().collect();
            i = close + 1;
            match body.split_once(',') {
                Some((lo, hi)) => (
                    lo.trim().parse().unwrap_or(0),
                    hi.trim()
                        .parse()
                        .unwrap_or_else(|_| panic!("bad repeat in {pat:?}")),
                ),
                None => {
                    let n = body
                        .trim()
                        .parse()
                        .unwrap_or_else(|_| panic!("bad repeat in {pat:?}"));
                    (n, n)
                }
            }
        } else {
            (1, 1)
        };
        assert!(min <= max, "bad repetition {{{min},{max}}} in {pat:?}");
        atoms.push(Atom { pool, min, max });
    }
    atoms
}

fn parse_class(body: &[char], pat: &str) -> Pool {
    let mut out = Vec::new();
    let mut i = 0;
    while i < body.len() {
        let c = if body[i] == '\\' {
            i += 1;
            match *body
                .get(i)
                .unwrap_or_else(|| panic!("dangling \\ in class of {pat:?}"))
            {
                'n' => '\n',
                't' => '\t',
                other => other,
            }
        } else {
            body[i]
        };
        // Range `a-z` (a trailing or leading '-' is a literal).
        if body.get(i + 1) == Some(&'-') && i + 2 < body.len() {
            let hi = body[i + 2];
            for code in (c as u32)..=(hi as u32) {
                if let Some(ch) = char::from_u32(code) {
                    out.push(ch);
                }
            }
            i += 3;
        } else {
            out.push(c);
            i += 1;
        }
    }
    assert!(!out.is_empty(), "empty character class in {pat:?}");
    Pool::Chars(out)
}
