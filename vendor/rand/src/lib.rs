//! Offline stub of the `rand 0.8` API surface used by this workspace.
//!
//! Provides seeded, deterministic pseudo-random generation via SplitMix64.
//! Only the items the workspace actually consumes are implemented:
//! [`rngs::StdRng`], [`SeedableRng::seed_from_u64`], and the [`Rng`]
//! extension methods `gen`, `gen_range`, and `gen_bool`.

use std::ops::Range;

/// Core random source: a stream of `u64`s.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Seedable construction (only the `seed_from_u64` entry point).
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be sampled uniformly over their full domain (`rng.gen()`).
pub trait Standard: Sized {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_f64()
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Types that can be sampled uniformly from a half-open range.
pub trait SampleUniform: Sized + PartialOrd {
    fn sample_in<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_in<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
                assert!(lo < hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u128;
                lo.wrapping_add((rng.next_u64() as u128 % span) as $t)
            }
        }
    )*};
}

impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    fn sample_in<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
        assert!(lo < hi, "gen_range: empty range");
        lo + (hi - lo) * rng.next_f64()
    }
}

impl SampleUniform for f32 {
    fn sample_in<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
        assert!(lo < hi, "gen_range: empty range");
        lo + (hi - lo) * rng.next_f64() as f32
    }
}

/// Extension methods over any [`RngCore`].
pub trait Rng: RngCore {
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    fn gen_range<T: SampleUniform>(&mut self, range: Range<T>) -> T
    where
        Self: Sized,
    {
        T::sample_in(range.start, range.end, self)
    }

    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        self.next_f64() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic SplitMix64 generator (stub for `rand::rngs::StdRng`).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng {
                state: seed ^ 0xD6E8_FEB8_6659_FD93,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_given_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(a.gen::<u64>(), b.gen::<u64>());
    }

    #[test]
    fn f64_ranges_hit_bounds() {
        let mut r = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x = r.gen_range(-1.0..1.0);
            assert!((-1.0..1.0).contains(&x));
        }
    }

    #[test]
    fn int_ranges_in_bounds_and_cover() {
        let mut r = StdRng::seed_from_u64(9);
        let mut seen = [false; 8];
        for _ in 0..200 {
            let x = r.gen_range(0usize..8);
            seen[x] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn gen_bool_extremes() {
        let mut r = StdRng::seed_from_u64(11);
        assert!(!r.gen_bool(0.0));
        assert!(r.gen_bool(1.0));
    }

    #[test]
    fn unit_interval_mean_is_centered() {
        let mut r = StdRng::seed_from_u64(13);
        let n = 10_000;
        let sum: f64 = (0..n).map(|_| r.gen::<f64>()).sum();
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }
}
