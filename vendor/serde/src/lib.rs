//! Offline stub of `serde`: marker traits plus no-op derive macros.
//!
//! The workspace annotates data types with `#[derive(Serialize, Deserialize)]`
//! but never serializes at runtime (CSV/text output is hand-rolled), so the
//! traits carry no methods here and the derives (re-exported from the
//! `serde_derive` stub) expand to nothing.

pub use serde_derive::{Deserialize, Serialize};

/// Marker stand-in for `serde::Serialize`.
pub trait Serialize {}

/// Marker stand-in for `serde::Deserialize`.
pub trait Deserialize<'de>: Sized {}
