//! No-op `Serialize`/`Deserialize` derive macros for the offline serde stub.
//!
//! The workspace derives these traits for forward compatibility (and so data
//! types document their wire-format intent), but nothing serializes at
//! runtime — so the derives accept the input (including `#[serde(...)]`
//! attributes) and emit nothing.

use proc_macro::TokenStream;

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
